//! Point-in-time metric snapshots with text and JSON export.
//!
//! The JSON format is the stable interchange form that `BENCH_*.json`
//! trajectories carry from this PR onward:
//!
//! ```json
//! {
//!   "registry": "node-0",
//!   "metrics": [
//!     {"name": "smr.node.decided", "type": "counter", "value": 42},
//!     {"name": "core.signing.queue_depth", "type": "gauge", "value": -1},
//!     {"name": "consensus.replica.write_phase_ms", "type": "histogram",
//!      "count": 3, "sum": 9, "min": 1, "max": 5,
//!      "buckets": [[1, 1, 2], [5, 5, 1]]}
//!   ]
//! }
//! ```
//!
//! Buckets are `[lower, upper, count]` triples, non-empty buckets
//! only, ascending by `lower`. The hand-rolled writer/parser keeps the
//! crate zero-dependency (the workspace deliberately has no serde_json).

/// Snapshot of a [`crate::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `(lower, upper, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the recorded `max`. Returns 0 for an empty
    /// histogram. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(_, upper, count) in &self.buckets {
            seen += count;
            if seen >= target {
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into `self` (bucket-wise merge, as
    /// when aggregating the same metric across replicas).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u64, u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        while let (Some(&&(la, ua, ca)), Some(&&(lb, ub, cb))) = (a.peek(), b.peek()) {
            match la.cmp(&lb) {
                std::cmp::Ordering::Less => {
                    merged.push((la, ua, ca));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((lb, ub, cb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((la, ua, ca + cb));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
    }
}

/// Value of one exported metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Up/down gauge.
    Gauge(i64),
    /// Latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted name, `crate.subsystem.metric`.
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// Point-in-time copy of one [`crate::Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Registry name (e.g. `node-0`).
    pub registry: String,
    /// Metrics sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// The metric with this exact name, if present.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Counter value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metric(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.metric(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metric(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// bucket-merge, metrics unique to `other` are appended. Used to
    /// aggregate the same metric set across replicas.
    pub fn merge(&mut self, other: &Snapshot) {
        for m in &other.metrics {
            match self.metrics.iter_mut().find(|mine| mine.name == m.name) {
                Some(mine) => match (&mut mine.value, &m.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Type mismatch across snapshots: keep ours.
                    _ => {}
                },
                None => self.metrics.push(m.clone()),
            }
        }
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Human-readable report: one line per scalar, a summary line per
    /// histogram (count / mean / p50 / p90 / p99 / max).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("registry {}\n", self.registry));
        let width = self
            .metrics
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(0);
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("  {:width$}  counter    {v}\n", m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("  {:width$}  gauge      {v}\n", m.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "  {:width$}  histogram  count={} mean={:.1} p50={} p90={} p99={} max={}\n",
                        m.name,
                        h.count,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                    ));
                }
            }
        }
        out
    }

    /// Stable JSON form (see module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"registry\":");
        json_string(out, &self.registry);
        out.push_str(",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(out, &m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.min, h.max
                    ));
                    for (j, &(lo, hi, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{lo},{hi},{c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
    }

    /// Parses the JSON form produced by [`Snapshot::to_json`].
    pub fn from_json(json: &str) -> Result<Snapshot, String> {
        let value = json::parse(json)?;
        snapshot_from_value(&value)
    }
}

/// Serializes several registry snapshots as
/// `{"registries": [snapshot, ...]}` — the `obs_report` dump format.
pub fn to_json_many(snapshots: &[Snapshot]) -> String {
    let mut out = String::from("{\"registries\":[");
    for (i, s) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        s.write_json(&mut out);
    }
    out.push_str("]}");
    out
}

/// Parses the output of [`to_json_many`].
pub fn from_json_many(json: &str) -> Result<Vec<Snapshot>, String> {
    let value = json::parse(json)?;
    let list = value
        .get("registries")
        .and_then(|v| v.as_array())
        .ok_or("missing \"registries\" array")?;
    list.iter().map(snapshot_from_value).collect()
}

// lint:allow(panic): `triple[i]` with `i ∈ 0..3` follows the `len() != 3` rejection
fn snapshot_from_value(value: &json::Value) -> Result<Snapshot, String> {
    let registry = value
        .get("registry")
        .and_then(|v| v.as_str())
        .ok_or("missing \"registry\" string")?
        .to_string();
    let raw_metrics = value
        .get("metrics")
        .and_then(|v| v.as_array())
        .ok_or("missing \"metrics\" array")?;
    let mut metrics = Vec::with_capacity(raw_metrics.len());
    for m in raw_metrics {
        let name = m
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("metric missing \"name\"")?
            .to_string();
        let kind = m
            .get("type")
            .and_then(|v| v.as_str())
            .ok_or("metric missing \"type\"")?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                m.get("value")
                    .and_then(|v| v.as_u64())
                    .ok_or("counter missing \"value\"")?,
            ),
            "gauge" => MetricValue::Gauge(
                m.get("value")
                    .and_then(|v| v.as_i64())
                    .ok_or("gauge missing \"value\"")?,
            ),
            "histogram" => {
                let field = |k: &str| {
                    m.get(k)
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| format!("histogram missing \"{k}\""))
                };
                let raw_buckets = m
                    .get("buckets")
                    .and_then(|v| v.as_array())
                    .ok_or("histogram missing \"buckets\"")?;
                let mut buckets = Vec::with_capacity(raw_buckets.len());
                for b in raw_buckets {
                    let triple = b.as_array().ok_or("bucket is not an array")?;
                    if triple.len() != 3 {
                        return Err("bucket is not a [lower, upper, count] triple".into());
                    }
                    let n = |i: usize| {
                        triple[i]
                            .as_u64()
                            .ok_or("bucket entry is not an unsigned integer")
                    };
                    buckets.push((n(0)?, n(1)?, n(2)?));
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    buckets,
                })
            }
            other => return Err(format!("unknown metric type {other:?}")),
        };
        metrics.push(MetricSnapshot { name, value });
    }
    Ok(Snapshot { registry, metrics })
}

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal recursive-descent JSON parser — just enough to read the
/// snapshot schema back (objects, arrays, strings, integers, bools,
/// null). Numbers are kept as `i128` so the full `u64` and `i64`
/// ranges round-trip exactly.
pub(crate) mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i128),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(n) => u64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(n) => i64::try_from(*n).ok(),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    // lint:allow(panic): every index is preceded by an explicit bounds check in this hand-rolled parser
    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    // lint:allow(panic): every index is preceded by an explicit bounds check in this hand-rolled parser
    fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == want {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    // lint:allow(panic): `*pos < bytes.len()` is established by the caller's dispatch on `bytes.get(*pos)`
    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    // lint:allow(panic): every index is preceded by an explicit bounds check in this hand-rolled parser
    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("non-scalar \\u escape")?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = *pos;
                    *pos += 1;
                    while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                        *pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&bytes[start..*pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    // lint:allow(panic): loop indices are bounds-checked; the digit span is ASCII so the UTF-8 view cannot fail
    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == start || (*pos == start + 1 && bytes[start] == b'-') {
            return Err(format!("invalid number at byte {start}"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| format!("number out of range at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            registry: "node-0".into(),
            metrics: vec![
                MetricSnapshot {
                    name: "consensus.replica.write_phase_ms".into(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum: 9,
                        min: 1,
                        max: 5,
                        buckets: vec![(1, 1, 2), (5, 5, 1)],
                    }),
                },
                MetricSnapshot {
                    name: "core.signing.queue_depth".into(),
                    value: MetricValue::Gauge(-2),
                },
                MetricSnapshot {
                    name: "smr.node.decided".into(),
                    value: MetricValue::Counter(42),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let snap = sample();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_round_trip_many() {
        let snaps = vec![sample(), Snapshot { registry: "node-1".into(), metrics: vec![] }];
        let json = to_json_many(&snaps);
        let back = from_json_many(&json).unwrap();
        assert_eq!(back, snaps);
    }

    #[test]
    fn json_round_trips_extreme_values() {
        let snap = Snapshot {
            registry: "edge \"case\"\n".into(),
            metrics: vec![
                MetricSnapshot {
                    name: "max.counter".into(),
                    value: MetricValue::Counter(u64::MAX),
                },
                MetricSnapshot {
                    name: "min.gauge".into(),
                    value: MetricValue::Gauge(i64::MIN),
                },
                MetricSnapshot {
                    name: "wide.histogram".into(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 1,
                        sum: u64::MAX,
                        min: u64::MAX,
                        max: u64::MAX,
                        buckets: vec![(u64::MAX - 1, u64::MAX, 1)],
                    }),
                },
            ],
        };
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_parser_accepts_whitespace_and_reordering() {
        let json = r#"
            { "metrics" : [ { "type" : "counter" , "value" : 7 ,
                              "name" : "a.b.c" } ] ,
              "registry" : "n" }
        "#;
        let snap = Snapshot::from_json(json).unwrap();
        assert_eq!(snap.registry, "n");
        assert_eq!(snap.counter_value("a.b.c"), Some(7));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Snapshot::from_json("").is_err());
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("{\"registry\":\"x\"}").is_err());
        assert!(Snapshot::from_json("[1,2,3]").is_err());
        assert!(Snapshot::from_json("{\"registry\":\"x\",\"metrics\":[]} junk").is_err());
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = HistogramSnapshot {
            count: 100,
            sum: 0,
            min: 1,
            max: 1000,
            buckets: vec![(1, 1, 50), (10, 19, 40), (992, 1055, 10)],
        };
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p90(), 19);
        // p99 lands in the last bucket; clamped to max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_combines_buckets() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 11,
            min: 1,
            max: 10,
            buckets: vec![(1, 1, 1), (10, 10, 1)],
        };
        let b = HistogramSnapshot {
            count: 3,
            sum: 25,
            min: 5,
            max: 10,
            buckets: vec![(5, 5, 1), (10, 10, 2)],
        };
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 36);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 10);
        assert_eq!(a.buckets, vec![(1, 1, 1), (5, 5, 1), (10, 10, 3)]);
    }

    #[test]
    fn snapshot_merge_aggregates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter_value("smr.node.decided"), Some(84));
        assert_eq!(a.gauge_value("core.signing.queue_depth"), Some(-4));
        assert_eq!(
            a.histogram("consensus.replica.write_phase_ms").unwrap().count,
            6
        );
    }

    #[test]
    fn text_report_mentions_every_metric() {
        let text = sample().to_text();
        assert!(text.contains("registry node-0"));
        assert!(text.contains("smr.node.decided"));
        assert!(text.contains("counter"));
        assert!(text.contains("p99="));
    }
}
