//! RAII scope timers.

use crate::Histogram;
use std::time::Instant;

/// Records the elapsed wall time of a scope, in microseconds, into a
/// [`Histogram`] when dropped.
///
/// ```
/// use hlf_obs::Histogram;
///
/// let h = Histogram::new();
/// {
///     let _span = h.span();
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing now. Usually spelled [`Histogram::span`].
    pub fn new(histogram: &'a Histogram) -> SpanTimer<'a> {
        SpanTimer {
            histogram,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed microseconds so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Stops the timer and records immediately, returning the recorded
    /// value in microseconds.
    pub fn finish(mut self) -> u64 {
        self.armed = false;
        let elapsed = self.elapsed_us();
        self.histogram.record(elapsed);
        elapsed
    }

    /// Abandons the span without recording (e.g. an error path whose
    /// latency would pollute the distribution).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record(self.elapsed_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Histogram::new();
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_and_disarms_drop() {
        let h = Histogram::new();
        let span = h.span();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = span.finish();
        assert!(us >= 1_000, "slept 2ms but recorded {us}us");
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().max, us);
    }

    #[test]
    fn discard_records_nothing() {
        let h = Histogram::new();
        h.span().discard();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn unwind_still_records_span() {
        // A panic inside the timed scope must not lose the sample: the
        // armed Drop impl runs during unwind.
        let h = Histogram::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = h.span();
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(h.count(), 1);
    }
}
