//! Distributed trace contexts, gated by `HLF_TRACE`.
//!
//! A [`TraceContext`] is the compact identity one transaction carries
//! across the pipeline — client → frontend → leader → quorum → signed
//! block → collection — so flight-recorder events emitted on different
//! nodes can be joined into one causal timeline. It is deliberately
//! tiny (16 bytes: trace id + origin timestamp) so that carrying it
//! inside wire messages costs nothing measurable.
//!
//! Whether contexts are *generated* (and flight recorders populated) is
//! controlled by the `HLF_TRACE` environment variable, read once per
//! process exactly like `HLF_LOG`: unset/`off` disables tracing, any of
//! `1`/`on`/`true`/`trace` enables it. The wire format is unconditional
//! — a traceless process still decodes traced peers' messages (the
//! context is a trailing optional field) and encodes `None`
//! byte-identically to the pre-trace format.

use std::sync::OnceLock;

/// Compact per-transaction trace identity carried inside wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Globally unique (per run) trace id; see [`trace_id`].
    pub id: u64,
    /// Microsecond timestamp at the origin of the trace (submission
    /// time on the originating node's clock).
    pub origin_us: u64,
}

impl TraceContext {
    /// Creates a context from an explicit id and origin timestamp.
    pub fn new(id: u64, origin_us: u64) -> TraceContext {
        TraceContext { id, origin_us }
    }

    /// The canonical context for a client request: the id derives
    /// deterministically from `(client, seq)` so every node in the
    /// pipeline — and the offline `trace_report` merger — computes the
    /// same id without coordination.
    pub fn for_request(client: u32, seq: u64, origin_us: u64) -> TraceContext {
        TraceContext {
            id: trace_id(client, seq),
            origin_us,
        }
    }
}

/// Deterministic trace id for a client request. The client id occupies
/// the top 16 bits and the sequence number the lower 48: frontends are
/// few and sequences dense, so ids are collision-free for any realistic
/// run length.
pub fn trace_id(client: u32, seq: u64) -> u64 {
    ((client as u64 & 0xffff) << 48) | (seq & 0x0000_ffff_ffff_ffff)
}

/// Splits a [`trace_id`] back into `(client, seq)`.
pub fn trace_id_parts(id: u64) -> (u32, u64) {
    ((id >> 48) as u32, id & 0x0000_ffff_ffff_ffff)
}

static TRACE_ENABLED: OnceLock<bool> = OnceLock::new();

fn parse(value: Option<&str>) -> bool {
    matches!(
        value.map(|v| v.trim().to_ascii_lowercase()).as_deref(),
        Some("1") | Some("on") | Some("true") | Some("trace")
    )
}

/// Whether tracing is enabled for this process (from `HLF_TRACE`,
/// cached on first call).
#[inline]
pub fn trace_enabled() -> bool {
    *TRACE_ENABLED.get_or_init(|| parse(std::env::var("HLF_TRACE").ok().as_deref()))
}

/// Pins the tracing flag programmatically (first caller wins, including
/// the lazy env read). Mainly for tests and the `trace_report` tool.
pub fn set_trace_enabled(enabled: bool) {
    let _ = TRACE_ENABLED.set(enabled);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        assert!(!parse(None));
        assert!(!parse(Some("")));
        assert!(!parse(Some("off")));
        assert!(!parse(Some("0")));
        assert!(parse(Some("1")));
        assert!(parse(Some("on")));
        assert!(parse(Some(" TRUE ")));
        assert!(parse(Some("trace")));
    }

    #[test]
    fn trace_id_roundtrips() {
        for (client, seq) in [(0u32, 0u64), (1, 1), (104, 88_213), (0xffff, (1 << 48) - 1)] {
            let id = trace_id(client, seq);
            assert_eq!(trace_id_parts(id), (client, seq));
        }
        // Distinct requests get distinct ids.
        assert_ne!(trace_id(1, 2), trace_id(2, 1));
    }

    #[test]
    fn for_request_uses_derived_id() {
        let ctx = TraceContext::for_request(104, 7, 123_456);
        assert_eq!(ctx.id, trace_id(104, 7));
        assert_eq!(ctx.origin_us, 123_456);
    }
}
