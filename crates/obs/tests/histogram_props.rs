//! Property tests for histogram bucket math and quantiles, plus a
//! generative JSON round-trip.

use hlf_obs::histogram::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS};
use hlf_obs::{Histogram, MetricSnapshot, MetricValue, Snapshot};
use proptest::prelude::*;

proptest! {
    /// Every recorded value falls in a bucket whose range contains it.
    #[test]
    fn bucket_contains_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "lower {} > {}", bucket_lower(i), v);
        prop_assert!(v <= bucket_upper(i), "upper {} < {}", bucket_upper(i), v);
    }

    /// Bucketing preserves order: a <= b implies bucket(a) <= bucket(b).
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantiles are monotone in q and bounded by [min, max].
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qa in 0u32..=100,
        qb in 0u32..=100,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let (qlo, qhi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let vlo = snap.quantile(qlo as f64 / 100.0);
        let vhi = snap.quantile(qhi as f64 / 100.0);
        prop_assert!(vlo <= vhi, "q{qlo}={vlo} > q{qhi}={vhi}");
        prop_assert!(vhi <= snap.max);
        // Any quantile is at least the smallest bucket's lower bound.
        prop_assert!(vlo >= snap.buckets[0].0);
    }

    /// A quantile answer is never below the true value by more than
    /// the bucket's relative error (the bucket upper bound is
    /// reported, so it can only overshoot within one bucket width).
    #[test]
    fn median_lands_in_a_populated_bucket(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.p50();
        // p50 equals some populated bucket's (clamped) upper bound.
        prop_assert!(
            snap.buckets.iter().any(|&(_, hi, _)| p50 == hi.min(snap.max)),
            "p50 {p50} not a bucket boundary"
        );
    }

    /// Bucket-wise merge is associative (and agrees with recording all
    /// values into one histogram), so cross-replica aggregation order
    /// never changes a report.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let snap = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Both equal the histogram of the concatenation (sum wraps on
        // overflow in both paths).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let mut direct = snap(&all);
        direct.sum = left.sum; // u64 counter sum wraps identically
        prop_assert_eq!(&left.count, &direct.count);
        prop_assert_eq!(&left.buckets, &direct.buckets);
        if !all.is_empty() {
            prop_assert_eq!(left.min, direct.min);
            prop_assert_eq!(left.max, direct.max);
        }
    }

    /// Snapshot totals equal what was recorded, and the JSON form
    /// round-trips exactly for arbitrary recorded data.
    #[test]
    fn recorded_snapshot_roundtrips_via_json(
        values in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let h = Histogram::new();
        let mut sum = 0u64;
        for &v in &values {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.buckets.iter().map(|&(_, _, c)| c).sum::<u64>(),
            values.len() as u64
        );
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(snap.max, max);
            prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        }

        let wrapped = Snapshot {
            registry: "prop".to_string(),
            metrics: vec![MetricSnapshot {
                name: "test.histogram".to_string(),
                value: MetricValue::Histogram(snap),
            }],
        };
        let back = Snapshot::from_json(&wrapped.to_json()).unwrap();
        prop_assert_eq!(back, wrapped);
    }
}

// `sum` above wraps on overflow (u64 histogram sum wraps too for
// pathological inputs); totals check uses count, not sum, on purpose.
