//! Property tests for histogram bucket math and quantiles, a
//! generative JSON round-trip, and concurrent-writer checks (the
//! histogram is written lock-free from every replica thread, so the
//! snapshot/merge algebra has to hold under real interleavings, not
//! just sequential recording).

use hlf_obs::histogram::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS};
use hlf_obs::{Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic value stream for the threaded tests (splitmix64), so
/// failures reproduce without proptest shrinking across threads.
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            // Keep values in a latency-like range so buckets collide
            // across threads (the interesting contention case).
            (z ^ (z >> 31)) % 50_000_000
        })
        .collect()
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Eight threads hammering ONE shared histogram produce exactly the
/// sequential snapshot: no lost counts, no torn min/max, same buckets.
#[test]
fn concurrent_writers_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let shared = Arc::new(Histogram::new());
    let slices: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| stream(0xfeed_0000 + t as u64, PER_THREAD))
        .collect();

    let handles: Vec<_> = slices
        .iter()
        .map(|slice| {
            let h = Arc::clone(&shared);
            let values = slice.clone();
            std::thread::spawn(move || {
                for v in values {
                    h.record(v);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread panicked");
    }

    let all: Vec<u64> = slices.into_iter().flatten().collect();
    let expected = snapshot_of(&all);
    let got = shared.snapshot();
    assert_eq!(got.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(got, expected, "concurrent snapshot diverged from sequential");
}

/// Per-thread histograms merged in any grouping equal one histogram of
/// everything — the cross-replica aggregation path is safe regardless
/// of which replica's snapshot arrives first.
#[test]
fn parallel_shards_merge_to_the_sequential_snapshot() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let h = Histogram::new();
                for v in stream(0xabba_0000 + t as u64, PER_THREAD) {
                    h.record(v);
                }
                h.snapshot()
            })
        })
        .collect();
    let shards: Vec<HistogramSnapshot> = handles
        .into_iter()
        .map(|h| h.join().expect("recorder thread panicked"))
        .collect();

    let fold = |order: &mut dyn Iterator<Item = &HistogramSnapshot>| {
        let mut acc = HistogramSnapshot::default();
        for s in order {
            acc.merge(s);
        }
        acc
    };
    let forward = fold(&mut shards.iter());
    let reverse = fold(&mut shards.iter().rev());
    // Pairwise tree merge: (0⊕1) ⊕ (2⊕3) ⊕ ...
    let mut tree = HistogramSnapshot::default();
    for pair in shards.chunks(2) {
        let mut node = pair[0].clone();
        if let Some(second) = pair.get(1) {
            node.merge(second);
        }
        tree.merge(&node);
    }
    assert_eq!(forward, reverse, "merge order changed the aggregate");
    assert_eq!(forward, tree, "merge grouping changed the aggregate");

    let all: Vec<u64> = (0..THREADS)
        .flat_map(|t| stream(0xabba_0000 + t as u64, PER_THREAD))
        .collect();
    assert_eq!(
        forward,
        snapshot_of(&all),
        "merged shards diverged from single-histogram recording"
    );
}

proptest! {
    /// Every recorded value falls in a bucket whose range contains it.
    #[test]
    fn bucket_contains_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "lower {} > {}", bucket_lower(i), v);
        prop_assert!(v <= bucket_upper(i), "upper {} < {}", bucket_upper(i), v);
    }

    /// Bucketing preserves order: a <= b implies bucket(a) <= bucket(b).
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantiles are monotone in q and bounded by [min, max].
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qa in 0u32..=100,
        qb in 0u32..=100,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let (qlo, qhi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let vlo = snap.quantile(qlo as f64 / 100.0);
        let vhi = snap.quantile(qhi as f64 / 100.0);
        prop_assert!(vlo <= vhi, "q{qlo}={vlo} > q{qhi}={vhi}");
        prop_assert!(vhi <= snap.max);
        // Any quantile is at least the smallest bucket's lower bound.
        prop_assert!(vlo >= snap.buckets[0].0);
    }

    /// A quantile answer is never below the true value by more than
    /// the bucket's relative error (the bucket upper bound is
    /// reported, so it can only overshoot within one bucket width).
    #[test]
    fn median_lands_in_a_populated_bucket(
        values in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.p50();
        // p50 equals some populated bucket's (clamped) upper bound.
        prop_assert!(
            snap.buckets.iter().any(|&(_, hi, _)| p50 == hi.min(snap.max)),
            "p50 {p50} not a bucket boundary"
        );
    }

    /// Bucket-wise merge is associative (and agrees with recording all
    /// values into one histogram), so cross-replica aggregation order
    /// never changes a report.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let snap = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Both equal the histogram of the concatenation (sum wraps on
        // overflow in both paths).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let mut direct = snap(&all);
        direct.sum = left.sum; // u64 counter sum wraps identically
        prop_assert_eq!(&left.count, &direct.count);
        prop_assert_eq!(&left.buckets, &direct.buckets);
        if !all.is_empty() {
            prop_assert_eq!(left.min, direct.min);
            prop_assert_eq!(left.max, direct.max);
        }
    }

    /// Snapshot totals equal what was recorded, and the JSON form
    /// round-trips exactly for arbitrary recorded data.
    #[test]
    fn recorded_snapshot_roundtrips_via_json(
        values in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let h = Histogram::new();
        let mut sum = 0u64;
        for &v in &values {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.buckets.iter().map(|&(_, _, c)| c).sum::<u64>(),
            values.len() as u64
        );
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(snap.max, max);
            prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        }

        let wrapped = Snapshot {
            registry: "prop".to_string(),
            metrics: vec![MetricSnapshot {
                name: "test.histogram".to_string(),
                value: MetricValue::Histogram(snap),
            }],
        };
        let back = Snapshot::from_json(&wrapped.to_json()).unwrap();
        prop_assert_eq!(back, wrapped);
    }

    /// The reported p99 is within one log-linear bucket of the exact
    /// order statistic: it lands in the *same* bucket as the true
    /// `ceil(0.99 * n)`-th smallest value and never undershoots it.
    /// That bounds the quantile error to the bucket's relative width
    /// for every input distribution.
    #[test]
    fn p99_is_within_one_bucket_of_exact(
        values in proptest::collection::vec(any::<u64>(), 1..400),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let reported = snap.p99();

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((0.99 * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];

        prop_assert!(
            reported >= exact,
            "p99 {reported} undershoots exact {exact}"
        );
        prop_assert_eq!(
            bucket_index(reported),
            bucket_index(exact),
            "p99 {} left the exact value's bucket ({} vs {})",
            reported,
            bucket_index(reported),
            bucket_index(exact)
        );
        // And it cannot exceed the bucket's upper bound (clamped to the
        // observed max), i.e. the overshoot is below one bucket width.
        prop_assert!(reported <= bucket_upper(bucket_index(exact)).min(snap.max));
    }
}

// `sum` above wraps on overflow (u64 histogram sum wraps too for
// pathological inputs); totals check uses count, not sum, on purpose.
