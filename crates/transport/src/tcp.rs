//! Real-socket TCP backend: the multi-process deployment path.
//!
//! # Design: `std::net` + per-peer threads, not a readiness loop
//!
//! The backend is built on blocking `std::net` sockets with one writer
//! thread per outbound link and one reader thread per inbound
//! connection, rather than a hand-rolled epoll loop. Rationale:
//!
//! * **Zero dependencies, zero `unsafe`.** An epoll readiness loop
//!   needs raw syscalls (`libc`/`mio`), which this workspace bans.
//!   `std::net` is the entire surface we use.
//! * **The cluster is small by construction.** A BFT ordering cluster
//!   is `3f + 1` replicas plus a handful of frontends — at most a few
//!   dozen links, so thread-per-link costs kilobytes of stacks, not
//!   the C10K problem epoll exists to solve.
//! * **Blocking writers make coalescing natural.** A writer thread
//!   drains its peer's entire send queue into one
//!   [`write_vectored`](std::io::Write::write_vectored) call, so under
//!   load the syscall rate falls automatically (many frames per
//!   `writev`) with no timer or Nagle tuning.
//!
//! # Wire format
//!
//! Connections are unidirectional: the **sender dials the
//! destination** (lazily, on first send), so each accepted connection
//! carries one peer's traffic toward us and replies flow over the
//! reverse link that the peer dials itself.
//!
//! Handshake (after `connect`):
//!
//! ```text
//! initiator -> acceptor   "HLFT" | version(1) | kind(1) | id(4 LE) | nonce_i(16) | tag(32)
//! acceptor  -> initiator  nonce_a(16) | tag(32)
//! ```
//!
//! Both tags are HMACs under the pairwise link key
//! ([`Authenticator::for_link`]) with distinct domain-separation
//! labels, so neither message can be replayed as the other. Both sides
//! then derive the **session key** `HMAC(link, "hlf-session" || nonce_i
//! || nonce_a)` ([`Authenticator::rekey`]); fresh nonces on every
//! connection mean every reconnect re-keys the link.
//!
//! Data frames:
//!
//! ```text
//! len(4 LE) | tag(32) | payload(len - 32)
//! ```
//!
//! `tag || payload` is exactly [`Authenticator::seal`] output under the
//! session key, and `payload` is exactly the bytes the in-process hub
//! would deliver — the [`Framed`](../../hlf_smr) codec output,
//! optional 17-byte trace trailer included. Strip the length prefix
//! and the seal and the existing `Reader` paths decode socket bytes
//! unchanged (the cross-backend codec test in `hlf-smr` captures
//! socket bytes and proves it).
//!
//! # Flow control and loss
//!
//! Each link's send queue is capped (`max_queue_bytes`, default
//! 64 MiB); overflow drops the **oldest** frames and counts
//! `transport.net.queue_drops`. A dead peer therefore surfaces as
//! silence plus a growing-then-shedding queue, never as backpressure
//! into consensus — the BFT layers above already tolerate message
//! loss (that is what retransmission and view changes are for).
//! Reconnection uses exponential backoff from `initial_backoff`
//! (25 ms) doubling to `max_backoff` (2 s).

use crate::{Authenticator, Backend, Endpoint, PeerId, TransportError};
use crossbeam::channel::{self, Receiver, Sender};
use hlf_crypto::hmac::hmac_sha256_multi;
use hlf_obs::{Counter, Gauge, Registry};
use hlf_wire::{BufferPool, Bytes};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Handshake / protocol version.
const WIRE_VERSION: u8 = 1;
/// Handshake magic.
const MAGIC: &[u8; 4] = b"HLFT";
/// HELLO message length: magic 4 + version 1 + kind 1 + id 4 + nonce 16 + tag 32.
const HELLO_LEN: usize = 58;
/// ACK message length: nonce 16 + tag 32.
const ACK_LEN: usize = 48;
/// Per-frame header: length prefix 4 + HMAC tag 32.
const FRAME_HEADER: usize = 36;
/// Largest accepted frame body (tag + payload); mirrors the codec's
/// 16 MiB message cap so a corrupt length prefix cannot OOM the reader.
const MAX_FRAME: usize = hlf_wire::MAX_LEN as usize + 32;
/// Frames drained per writev batch (bounds the header scratch space).
const MAX_BATCH: usize = 256;
/// Reader-side bulk-read window: one `read` syscall typically yields
/// many coalesced frames, which are then carved out copy-cheap.
const READ_SCRATCH: usize = 256 << 10;
/// How long handshake reads may block before the connection is culled.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Condvar wait slice, so writers notice shutdown promptly.
const WAIT_SLICE: Duration = Duration::from_millis(200);

/// Configuration for a TCP endpoint (one per process, normally).
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This endpoint's identity.
    pub id: PeerId,
    /// Address to listen on (`127.0.0.1:0` picks a free port).
    pub listen: SocketAddr,
    /// Cluster-wide secret all link keys derive from.
    pub secret: Vec<u8>,
    /// Initial address book: peers this endpoint may dial.
    pub peers: Vec<(PeerId, SocketAddr)>,
    /// First reconnect delay.
    pub initial_backoff: Duration,
    /// Reconnect delay ceiling.
    pub max_backoff: Duration,
    /// Per-link send-queue cap; overflow sheds oldest frames.
    pub max_queue_bytes: usize,
    /// Registry for `transport.net.*` metrics (a private one is
    /// created when absent).
    pub registry: Option<Arc<Registry>>,
}

impl TcpConfig {
    /// Config with the documented defaults and an empty address book.
    pub fn new(id: PeerId, listen: SocketAddr, secret: impl Into<Vec<u8>>) -> TcpConfig {
        TcpConfig {
            id,
            listen,
            secret: secret.into(),
            peers: Vec::new(),
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            max_queue_bytes: 64 << 20,
            registry: None,
        }
    }

    /// Adds a peer to the initial address book.
    pub fn with_peer(mut self, id: PeerId, addr: SocketAddr) -> TcpConfig {
        self.peers.push((id, addr));
        self
    }

    /// Registers the `transport.net.*` metrics on `registry`.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> TcpConfig {
        self.registry = Some(registry);
        self
    }
}

/// `transport.net.*` observability handles.
struct NetObs {
    bytes_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    frames_in: Arc<Counter>,
    writev_calls: Arc<Counter>,
    read_calls: Arc<Counter>,
    connects: Arc<Counter>,
    reconnects: Arc<Counter>,
    auth_failures: Arc<Counter>,
    queue_drops: Arc<Counter>,
    backoff_ms: Arc<Gauge>,
    open_links: Arc<Gauge>,
}

impl NetObs {
    fn register(registry: &Registry) -> NetObs {
        NetObs {
            bytes_out: registry.counter("transport.net.bytes_out"),
            bytes_in: registry.counter("transport.net.bytes_in"),
            frames_out: registry.counter("transport.net.frames_out"),
            frames_in: registry.counter("transport.net.frames_in"),
            writev_calls: registry.counter("transport.net.writev_calls"),
            read_calls: registry.counter("transport.net.read_calls"),
            connects: registry.counter("transport.net.connects"),
            reconnects: registry.counter("transport.net.reconnects"),
            auth_failures: registry.counter("transport.net.auth_failures"),
            queue_drops: registry.counter("transport.net.queue_drops"),
            backoff_ms: registry.gauge("transport.net.backoff_ms"),
            open_links: registry.gauge("transport.net.open_links"),
        }
    }
}

/// Point-in-time snapshot of the socket-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Payload + header bytes written to sockets.
    pub bytes_out: u64,
    /// Frame bytes read from sockets (length prefixes excluded).
    pub bytes_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Frames received and authenticated.
    pub frames_in: u64,
    /// `writev` syscalls issued by writer threads.
    pub writev_calls: u64,
    /// Bulk `read` syscalls issued by reader threads (frame pump only;
    /// handshakes and oversized-frame tails excluded).
    pub read_calls: u64,
    /// Successful outbound connections (incl. the first per link).
    pub connects: u64,
    /// Successful outbound connections after a link previously worked.
    pub reconnects: u64,
    /// Frames or handshakes rejected by HMAC verification.
    pub auth_failures: u64,
    /// Frames shed because a link queue exceeded its byte cap.
    pub queue_drops: u64,
}

impl NetStats {
    /// Send-side coalescing ratio: frames per `writev` syscall.
    /// Greater than 1 means batching is doing its job.
    pub fn frames_per_writev(&self) -> f64 {
        if self.writev_calls == 0 {
            0.0
        } else {
            self.frames_out as f64 / self.writev_calls as f64
        }
    }
}

/// Pending frames for one outbound link.
struct LinkQueue {
    items: VecDeque<Bytes>,
    bytes: usize,
    /// Set once the writer thread for this link has been spawned.
    writer_spawned: bool,
}

/// One outbound link: queue + wakeup for its writer thread.
struct PeerLink {
    peer: PeerId,
    queue: Mutex<LinkQueue>,
    wake: Condvar,
}

/// Locks `m`, recovering the guard if a holder panicked — queue state
/// is a plain VecDeque and stays consistent under unwind.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl PeerLink {
    fn new(peer: PeerId) -> PeerLink {
        PeerLink {
            peer,
            queue: Mutex::new(LinkQueue {
                items: VecDeque::new(),
                bytes: 0,
                writer_spawned: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Queues `payload`, shedding oldest frames past the cap.
    fn enqueue(&self, payload: Bytes, cap: usize, obs: &NetObs) {
        let mut q = lock_clean(&self.queue);
        q.bytes += payload.len();
        q.items.push_back(payload);
        while q.bytes > cap && q.items.len() > 1 {
            if let Some(old) = q.items.pop_front() {
                q.bytes -= old.len();
                obs.queue_drops.inc();
            }
        }
        drop(q);
        self.wake.notify_one();
    }

    /// Takes up to [`MAX_BATCH`] queued frames, waiting up to
    /// `WAIT_SLICE` for the first one. Empty result means "check
    /// shutdown and come back".
    fn drain_batch(&self, out: &mut Vec<Bytes>) {
        let mut q = lock_clean(&self.queue);
        if q.items.is_empty() {
            let (guard, _timeout) = self
                .wake
                .wait_timeout(q, WAIT_SLICE)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            q = guard;
        }
        while out.len() < MAX_BATCH {
            match q.items.pop_front() {
                Some(frame) => {
                    q.bytes -= frame.len();
                    out.push(frame);
                }
                None => break,
            }
        }
    }
}

/// Shared state behind a TCP [`Endpoint`] and all its socket threads.
pub(crate) struct TcpCore {
    id: PeerId,
    secret: Vec<u8>,
    pool: BufferPool,
    /// Address book: where each peer listens. Updated by `add_peer`.
    addrs: RwLock<HashMap<PeerId, SocketAddr>>,
    /// Outbound links with running (or pending) writer threads.
    links: RwLock<HashMap<PeerId, Arc<PeerLink>>>,
    incoming: Sender<(PeerId, Bytes)>,
    obs: NetObs,
    shutdown: AtomicBool,
    /// Live sockets, so `shutdown` can unblock reader/writer threads.
    streams: Mutex<Vec<TcpStream>>,
    nonce_counter: AtomicU64,
    initial_backoff: Duration,
    max_backoff: Duration,
    max_queue_bytes: usize,
    /// Back-reference for spawning threads that need the core.
    this: Weak<TcpCore>,
}

impl TcpCore {
    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Backend send: loopback short-circuits, everything else queues on
    /// the peer's link for coalesced writing.
    pub(crate) fn send(&self, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(TransportError::Disconnected(self.id));
        }
        if to == self.id {
            // Self-sends never touch a socket (mirrors hub delivery).
            return self
                .incoming
                .send((self.id, payload))
                .map_err(|_| TransportError::Disconnected(self.id));
        }
        let link = self.link_for(to)?;
        link.enqueue(payload, self.max_queue_bytes, &self.obs);
        Ok(())
    }

    /// Existing link for `to`, or a fresh one (with writer thread) if
    /// the address book knows the peer.
    fn link_for(&self, to: PeerId) -> Result<Arc<PeerLink>, TransportError> {
        if let Some(link) = self.links.read().ok().and_then(|l| l.get(&to).cloned()) {
            return Ok(link);
        }
        if !self
            .addrs
            .read()
            .map(|a| a.contains_key(&to))
            .unwrap_or(false)
        {
            return Err(TransportError::UnknownPeer(to));
        }
        let mut links = match self.links.write() {
            Ok(links) => links,
            Err(poisoned) => poisoned.into_inner(),
        };
        let link = links
            .entry(to)
            .or_insert_with(|| Arc::new(PeerLink::new(to)))
            .clone();
        drop(links);
        let needs_writer = {
            let mut q = lock_clean(&link.queue);
            let first = !q.writer_spawned;
            q.writer_spawned = true;
            first
        };
        if needs_writer {
            if let Some(core) = self.this.upgrade() {
                let thread_link = Arc::clone(&link);
                // lint:allow(detach): writer threads are intentionally detached; writer_loop exits when the shutdown flag is set and the condvar wakes it
                std::thread::Builder::new()
                    .name(format!("tcp-write-{to}"))
                    .spawn(move || core.writer_loop(&thread_link))
                    .ok();
            }
        }
        Ok(link)
    }

    /// Unique per-connection nonce: a secret-keyed digest over a
    /// counter, the wall clock and our identity. Uniqueness (not
    /// unpredictability) is what re-keying needs.
    fn fresh_nonce(&self) -> [u8; 16] {
        let count = self.nonce_counter.fetch_add(1, Ordering::Relaxed);
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let digest = hmac_sha256_multi(
            &self.secret,
            &[
                b"hlf-nonce",
                &count.to_le_bytes(),
                &now.to_le_bytes(),
                &self.id.flight_code().to_le_bytes(),
            ],
        );
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(digest.as_bytes().split_at(16).0);
        nonce
    }

    fn track_stream(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            lock_clean(&self.streams).push(clone);
        }
    }

    /// ---- initiator side -------------------------------------------------

    /// Dials `peer`, handshakes, and returns the connected stream plus
    /// the per-session authenticator.
    fn connect_once(&self, peer: PeerId) -> io::Result<(TcpStream, Authenticator)> {
        let addr = self
            .addrs
            .read()
            .ok()
            .and_then(|a| a.get(&peer).copied())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer has no address"))?;
        let mut stream = TcpStream::connect_timeout(&addr, HANDSHAKE_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let link = Authenticator::for_link(&self.secret, self.id, peer);

        // HELLO: magic | version | kind | id | nonce | tag(label "hello").
        let nonce_i = self.fresh_nonce();
        let mut hello = [0u8; HELLO_LEN];
        let (kind, raw_id) = match self.id {
            PeerId::Replica(id) => (0u8, id),
            PeerId::Client(id) => (1u8, id),
        };
        {
            let (magic_part, rest) = hello.split_at_mut(4);
            magic_part.copy_from_slice(MAGIC);
            let (vk_part, rest) = rest.split_at_mut(2);
            vk_part.copy_from_slice(&[WIRE_VERSION, kind]);
            let (id_part, rest) = rest.split_at_mut(4);
            id_part.copy_from_slice(&raw_id.to_le_bytes());
            rest.split_at_mut(16).0.copy_from_slice(&nonce_i);
        }
        let body_len = HELLO_LEN - 32;
        let tag = link.tag_labeled(b"hlf-hello", &[hello.split_at(body_len).0]);
        hello.split_at_mut(body_len).1.copy_from_slice(&tag);
        stream.write_all(&hello)?;

        // ACK: acceptor nonce + tag over both nonces (label "ack").
        let mut ack = [0u8; ACK_LEN];
        stream.read_exact(&mut ack)?;
        let (nonce_a, ack_tag) = ack.split_at(16);
        let expect = link.tag_labeled(b"hlf-ack", &[&nonce_i, nonce_a]);
        if !crate::constant_time_eq(ack_tag, &expect) {
            self.obs.auth_failures.inc();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake ack failed authentication",
            ));
        }
        let session = link.rekey(&nonce_i, nonce_a);
        stream.set_read_timeout(None)?;
        Ok((stream, session))
    }

    /// Dials with exponential backoff until connected or shut down.
    fn connect_with_backoff(&self, peer: PeerId, ever_connected: bool) -> Option<(TcpStream, Authenticator)> {
        let mut backoff = self.initial_backoff;
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            match self.connect_once(peer) {
                Ok(conn) => {
                    self.obs.connects.inc();
                    if ever_connected {
                        self.obs.reconnects.inc();
                    }
                    self.obs.backoff_ms.set(0);
                    return Some(conn);
                }
                Err(err) => {
                    hlf_obs::debug!("dial {peer} failed: {err}; retry in {backoff:?}");
                    self.obs.backoff_ms.set(backoff.as_millis() as i64);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.max_backoff);
                }
            }
        }
    }

    /// Writer thread body: connect, drain the queue into `writev`
    /// batches, reconnect (re-keying) on any socket error.
    fn writer_loop(&self, link: &PeerLink) {
        let mut ever_connected = false;
        let mut batch: Vec<Bytes> = Vec::with_capacity(MAX_BATCH);
        let mut headers: Vec<[u8; FRAME_HEADER]> = Vec::with_capacity(MAX_BATCH);
        'session: while !self.shutdown.load(Ordering::Acquire) {
            let Some((mut stream, session)) = self.connect_with_backoff(link.peer, ever_connected)
            else {
                return; // shut down while dialing
            };
            ever_connected = true;
            self.track_stream(&stream);
            self.obs.open_links.inc();
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    self.obs.open_links.dec();
                    return;
                }
                batch.clear();
                link.drain_batch(&mut batch);
                if batch.is_empty() {
                    continue;
                }
                if self.write_batch(&mut stream, &session, &batch, &mut headers).is_err() {
                    // Connection died: shed this batch (BFT layers
                    // tolerate loss) and reconnect with fresh keys.
                    self.obs.open_links.dec();
                    continue 'session;
                }
            }
        }
    }

    /// Seals every frame in `batch` and writes the whole batch through
    /// as few `writev` syscalls as the kernel allows (one, usually).
    fn write_batch(
        &self,
        stream: &mut TcpStream,
        session: &Authenticator,
        batch: &[Bytes],
        headers: &mut Vec<[u8; FRAME_HEADER]>,
    ) -> io::Result<()> {
        headers.clear();
        let mut total = 0usize;
        for frame in batch {
            let mut header = [0u8; FRAME_HEADER];
            let frame_len = (32 + frame.len()) as u32;
            let (len_part, tag_part) = header.split_at_mut(4);
            len_part.copy_from_slice(&frame_len.to_le_bytes());
            tag_part.copy_from_slice(&session.tag(frame.as_ref()));
            headers.push(header);
            total += FRAME_HEADER + frame.len();
        }
        let mut written = 0usize;
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(batch.len() * 2);
        while written < total {
            slices.clear();
            build_slices(headers, batch, written, &mut slices);
            match stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket closed mid-frame",
                    ));
                }
                Ok(n) => {
                    written += n;
                    self.obs.writev_calls.inc();
                    self.obs.bytes_out.add(n as u64);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(err),
            }
        }
        self.obs.frames_out.add(batch.len() as u64);
        Ok(())
    }

    /// ---- acceptor side --------------------------------------------------

    /// Accept-loop body (one thread per endpoint).
    fn acceptor_loop(&self, listener: &TcpListener) {
        while !self.shutdown.load(Ordering::Acquire) {
            let Ok((stream, addr)) = listener.accept() else {
                continue;
            };
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(core) = self.this.upgrade() {
                // lint:allow(detach): reader threads are detached; reader_session exits when its socket is shut down (peer close or our shutdown() draining streams)
                std::thread::Builder::new()
                    .name(format!("tcp-read-{addr}"))
                    .spawn(move || core.reader_session(stream))
                    .ok();
            }
        }
    }

    /// Handshakes an inbound connection and pumps its frames into the
    /// endpoint mailbox until the peer disconnects.
    fn reader_session(&self, mut stream: TcpStream) {
        if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
            || stream.set_nodelay(true).is_err()
        {
            return;
        }

        // HELLO.
        let mut hello = [0u8; HELLO_LEN];
        if stream.read_exact(&mut hello).is_err() {
            return;
        }
        let (body, hello_tag) = hello.split_at(HELLO_LEN - 32);
        let (magic, rest) = body.split_at(4);
        let (version_kind, rest) = rest.split_at(2);
        let (id_bytes, nonce_i) = rest.split_at(4);
        if magic != MAGIC || version_kind.first() != Some(&WIRE_VERSION) {
            self.obs.auth_failures.inc();
            return;
        }
        let raw_id = u32::from_le_bytes(id_bytes.try_into().unwrap_or_default());
        let peer = match version_kind.get(1) {
            Some(0) => PeerId::Replica(raw_id),
            Some(1) => PeerId::Client(raw_id),
            _ => {
                self.obs.auth_failures.inc();
                return;
            }
        };
        let link = Authenticator::for_link(&self.secret, self.id, peer);
        let expect = link.tag_labeled(b"hlf-hello", &[body]);
        if !crate::constant_time_eq(hello_tag, &expect) {
            self.obs.auth_failures.inc();
            return;
        }

        // ACK + session key.
        let nonce_a = self.fresh_nonce();
        let mut ack = [0u8; ACK_LEN];
        let ack_tag = link.tag_labeled(b"hlf-ack", &[nonce_i, &nonce_a]);
        ack.split_at_mut(16).0.copy_from_slice(&nonce_a);
        ack.split_at_mut(16).1.copy_from_slice(&ack_tag);
        if stream.write_all(&ack).is_err() || stream.set_read_timeout(None).is_err() {
            return;
        }
        let session = link.rekey(nonce_i, &nonce_a);
        self.track_stream(&stream);
        self.obs.open_links.inc();
        hlf_obs::debug!("accepted {peer} on {}", self.id);

        // Frame pump. The peer's writer coalesces many frames into one
        // writev, so we mirror that on the read side: bulk-read into a
        // sliding scratch window and carve complete frames out of it
        // without further syscalls. Frames larger than the window fall
        // back to reading their tail directly into the pooled body.
        let mut scratch = vec![0u8; READ_SCRATCH];
        let (mut from, mut upto) = (0usize, 0usize);
        'pump: loop {
            // Length prefix.
            while upto - from < 4 {
                if !refill(&mut stream, &mut scratch, &mut from, &mut upto, &self.obs) {
                    break 'pump;
                }
            }
            let mut len_buf = [0u8; 4];
            let Some(prefix) = scratch.get(from..from + 4) else {
                break;
            };
            len_buf.copy_from_slice(prefix);
            let frame_len = u32::from_le_bytes(len_buf) as usize;
            if !(32..=MAX_FRAME).contains(&frame_len) {
                self.obs.auth_failures.inc();
                break;
            }
            from += 4;
            let mut body = self.pool.take(frame_len);
            body.resize(frame_len, 0);
            let mut filled = 0usize;
            while filled < frame_len {
                if from == upto && !refill(&mut stream, &mut scratch, &mut from, &mut upto, &self.obs) {
                    break 'pump;
                }
                let take = (upto - from).min(frame_len - filled);
                match (scratch.get(from..from + take), body.get_mut(filled..filled + take)) {
                    (Some(src), Some(dst)) => dst.copy_from_slice(src),
                    _ => break 'pump,
                }
                from += take;
                filled += take;
                // A frame bigger than the whole window: read the rest
                // straight into the pooled body, skipping the copy.
                if filled < frame_len && frame_len - filled >= scratch.len() {
                    let Some(rest) = body.get_mut(filled..) else {
                        break 'pump;
                    };
                    if stream.read_exact(rest).is_err() {
                        break 'pump;
                    }
                    filled = frame_len;
                }
            }
            let sealed = self.pool.wrap(body);
            let Some(payload) = session.open_shared(&sealed) else {
                self.obs.auth_failures.inc();
                break;
            };
            self.obs.frames_in.inc();
            self.obs.bytes_in.add(frame_len as u64);
            if self.incoming.send((peer, payload)).is_err() {
                break; // endpoint dropped
            }
        }
        self.obs.open_links.dec();
    }
}

/// Tops up the reader's scratch window with one bulk `read`, compacting
/// the unparsed remainder to the front first. Returns `false` once the
/// stream is closed or errored.
fn refill(
    stream: &mut TcpStream,
    scratch: &mut [u8],
    from: &mut usize,
    upto: &mut usize,
    obs: &NetObs,
) -> bool {
    if *from > 0 {
        scratch.copy_within(*from..*upto, 0);
        *upto -= *from;
        *from = 0;
    }
    let Some(room) = scratch.get_mut(*upto..) else {
        return false;
    };
    if room.is_empty() {
        return false;
    }
    match stream.read(room) {
        Ok(0) | Err(_) => false,
        Ok(n) => {
            obs.read_calls.inc();
            *upto += n;
            true
        }
    }
}

/// Rebuilds the `IoSlice` list for a partially written batch: skip
/// `skip` already-written bytes, then reference the rest of every
/// header/payload pair. Repeated rebuilds are cheap (slice views only)
/// and sidestep the unstable `IoSlice::advance_slices`.
fn build_slices<'a>(
    headers: &'a [[u8; FRAME_HEADER]],
    batch: &'a [Bytes],
    mut skip: usize,
    out: &mut Vec<IoSlice<'a>>,
) {
    for (header, frame) in headers.iter().zip(batch) {
        for part in [header.as_slice(), frame.as_ref()] {
            if skip >= part.len() {
                skip -= part.len();
                continue;
            }
            if let Some(rest) = part.get(skip..) {
                out.push(IoSlice::new(rest));
            }
            skip = 0;
        }
    }
}

/// A bound TCP endpoint factory: owns the listener, the acceptor
/// thread and the shared [`TcpCore`].
pub struct TcpNetwork {
    core: Arc<TcpCore>,
    local_addr: SocketAddr,
    /// Handed to the first (only) `endpoint()` call.
    endpoint_rx: Mutex<Option<Receiver<(PeerId, Bytes)>>>,
}

impl TcpNetwork {
    /// Binds the listener, spawns the acceptor and returns the network
    /// handle. Dialing is lazy: nothing connects until the first send.
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure (address in use, permissions).
    pub fn bind(config: TcpConfig) -> io::Result<TcpNetwork> {
        let listener = TcpListener::bind(config.listen)?;
        let local_addr = listener.local_addr()?;
        let registry = config
            .registry
            .unwrap_or_else(|| Registry::new(format!("transport-{}", config.id)));
        let (tx, rx) = channel::unbounded();
        let core = Arc::new_cyclic(|this| TcpCore {
            id: config.id,
            secret: config.secret,
            pool: BufferPool::default(),
            addrs: RwLock::new(config.peers.into_iter().collect()),
            links: RwLock::new(HashMap::new()),
            incoming: tx,
            obs: NetObs::register(&registry),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            nonce_counter: AtomicU64::new(1),
            initial_backoff: config.initial_backoff,
            max_backoff: config.max_backoff,
            max_queue_bytes: config.max_queue_bytes.max(1),
            this: this.clone(),
        });
        let acceptor_core = Arc::clone(&core);
        // lint:allow(detach): the acceptor is detached; shutdown() sets the flag and dials the listener to unblock accept, after which the loop returns
        std::thread::Builder::new()
            .name(format!("tcp-accept-{}", core.id))
            .spawn(move || acceptor_core.acceptor_loop(&listener))?;
        Ok(TcpNetwork {
            core,
            local_addr,
            endpoint_rx: Mutex::new(Some(rx)),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This network's identity.
    pub fn id(&self) -> PeerId {
        self.core.id
    }

    /// The endpoint for this process.
    ///
    /// # Panics
    ///
    /// Panics on a second call: the inbound mailbox has exactly one
    /// consumer, and handing it out twice is a harness bug.
    pub fn endpoint(&self) -> Endpoint {
        let rx = lock_clean(&self.endpoint_rx).take();
        // lint:allow(panic): single-consumer contract, misuse is a harness bug.
        let rx = rx.expect("TcpNetwork::endpoint may only be called once");
        Endpoint::new(self.core.id, Backend::Tcp(Arc::clone(&self.core)), rx)
    }

    /// Adds (or re-addresses) a peer. A writer already retrying an old
    /// address picks the new one up on its next dial attempt — this is
    /// how a restarted replica on a fresh port rejoins.
    pub fn add_peer(&self, id: PeerId, addr: SocketAddr) {
        if let Ok(mut addrs) = self.core.addrs.write() {
            addrs.insert(id, addr);
        }
        if let Some(link) = self.core.links.read().ok().and_then(|l| l.get(&id).cloned()) {
            link.wake.notify_one();
        }
    }

    /// Snapshot of the socket-level counters.
    pub fn net_stats(&self) -> NetStats {
        let obs = &self.core.obs;
        NetStats {
            bytes_out: obs.bytes_out.get(),
            bytes_in: obs.bytes_in.get(),
            frames_out: obs.frames_out.get(),
            frames_in: obs.frames_in.get(),
            writev_calls: obs.writev_calls.get(),
            read_calls: obs.read_calls.get(),
            connects: obs.connects.get(),
            reconnects: obs.reconnects.get(),
            auth_failures: obs.auth_failures.get(),
            queue_drops: obs.queue_drops.get(),
        }
    }

    /// Stops every thread and closes every socket. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&self) {
        if self.core.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake writers parked on their queues.
        if let Ok(links) = self.core.links.read() {
            for link in links.values() {
                link.wake.notify_all();
            }
        }
        // Unblock readers and half-written writers. Drain under the
        // lock, shut the sockets down outside it: `shutdown()` is a
        // syscall that can stall on a wedged peer, and reader threads
        // take `streams` on every accepted connection.
        let drained: Vec<TcpStream> = lock_clean(&self.core.streams).drain(..).collect();
        for stream in drained {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }
}

impl Drop for TcpNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame_tag;
    use hlf_obs::FlightRecorder;

    fn local(core_id: u32, secret: &[u8]) -> TcpNetwork {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        TcpNetwork::bind(TcpConfig::new(PeerId::replica(core_id), listen, secret)).unwrap()
    }

    /// Builds a fully meshed address book across the given networks.
    fn mesh(nets: &[&TcpNetwork]) {
        for a in nets {
            for b in nets {
                if a.id() != b.id() {
                    a.add_peer(b.id(), b.local_addr());
                }
            }
        }
    }

    #[test]
    fn tcp_send_and_receive_roundtrip() {
        let n0 = local(0, b"s");
        let n1 = local(1, b"s");
        mesh(&[&n0, &n1]);
        let e0 = n0.endpoint();
        let e1 = n1.endpoint();
        e0.send(PeerId::replica(1), Bytes::from_static(b"over tcp"))
            .unwrap();
        let (from, payload) = e1.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, PeerId::replica(0));
        assert_eq!(payload.as_ref(), b"over tcp");
        // Reply flows over the reverse-direction connection.
        e1.send(PeerId::replica(0), Bytes::from_static(b"reply"))
            .unwrap();
        assert_eq!(
            e0.recv_timeout(Duration::from_secs(5)).unwrap().1.as_ref(),
            b"reply"
        );
        let stats = n0.net_stats();
        assert_eq!(stats.frames_out, 1);
        assert_eq!(stats.frames_in, 1);
        assert!(stats.bytes_out >= (FRAME_HEADER + 8) as u64);
    }

    #[test]
    fn tcp_loopback_and_unknown_peer() {
        let n0 = local(0, b"s");
        let e0 = n0.endpoint();
        e0.send(PeerId::replica(0), Bytes::from_static(b"self"))
            .unwrap();
        assert_eq!(
            e0.recv_timeout(Duration::from_secs(1)).unwrap().1.as_ref(),
            b"self"
        );
        assert_eq!(
            e0.send(PeerId::replica(9), Bytes::from_static(b"x")),
            Err(TransportError::UnknownPeer(PeerId::replica(9)))
        );
        // Loopback never touches a socket.
        assert_eq!(n0.net_stats().frames_out, 0);
    }

    #[test]
    fn tcp_wrong_secret_never_delivers() {
        let n0 = local(0, b"secret-a");
        let n1 = local(1, b"secret-b");
        mesh(&[&n0, &n1]);
        let e0 = n0.endpoint();
        let e1 = n1.endpoint();
        e0.send(PeerId::replica(1), Bytes::from_static(b"evil"))
            .unwrap();
        assert!(e1.recv_timeout(Duration::from_millis(600)).is_err());
        // The acceptor rejected the handshake HMAC.
        assert!(n1.net_stats().auth_failures >= 1);
    }

    #[test]
    fn tcp_coalesces_bursts_into_few_writevs() {
        let n0 = local(0, b"s");
        let n1 = local(1, b"s");
        mesh(&[&n0, &n1]);
        let e0 = n0.endpoint();
        let e1 = n1.endpoint();
        // Burst of frames queued before (and while) the link dials:
        // the writer drains them in batches.
        const FRAMES: usize = 400;
        for i in 0..FRAMES as u32 {
            e0.send(
                PeerId::replica(1),
                Bytes::from(i.to_le_bytes().to_vec()),
            )
            .unwrap();
        }
        let mut seen = 0;
        while seen < FRAMES {
            e1.recv_timeout(Duration::from_secs(5)).unwrap();
            seen += 1;
        }
        let stats = n0.net_stats();
        assert_eq!(stats.frames_out, FRAMES as u64);
        assert!(
            stats.writev_calls < FRAMES as u64,
            "expected coalescing: {} frames took {} writevs",
            stats.frames_out,
            stats.writev_calls
        );
        assert!(stats.frames_per_writev() > 1.0);
    }

    #[test]
    fn tcp_reconnects_and_rekeys_after_peer_restart() {
        let n0 = local(0, b"s");
        let n1 = local(1, b"s");
        mesh(&[&n0, &n1]);
        let e0 = n0.endpoint();
        let e1 = n1.endpoint();
        e0.send(PeerId::replica(1), Bytes::from_static(b"pre"))
            .unwrap();
        assert_eq!(
            e1.recv_timeout(Duration::from_secs(5)).unwrap().1.as_ref(),
            b"pre"
        );

        // "Crash" replica 1 and bring it back on a fresh port.
        n1.shutdown();
        drop(e1);
        drop(n1);
        let n1b = local(1, b"s");
        n1b.add_peer(PeerId::replica(0), n0.local_addr());
        let e1b = n1b.endpoint();
        n0.add_peer(PeerId::replica(1), n1b.local_addr());

        // The writer re-dials with backoff; eventually a fresh session
        // (fresh nonces -> fresh key) carries traffic again.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while std::time::Instant::now() < deadline {
            let _ = e0.send(PeerId::replica(1), Bytes::from_static(b"post"));
            if let Ok((_, payload)) = e1b.recv_timeout(Duration::from_millis(200)) {
                assert_eq!(payload.as_ref(), b"post");
                delivered = true;
                break;
            }
        }
        assert!(delivered, "link never recovered after restart");
        let stats = n0.net_stats();
        assert!(stats.connects >= 2, "expected a reconnect, saw {stats:?}");
        assert!(stats.reconnects >= 1);
    }

    #[test]
    fn tcp_queue_cap_sheds_oldest() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut config = TcpConfig::new(PeerId::replica(0), listen, b"s".as_slice());
        config.max_queue_bytes = 64; // tiny cap
        // Point at a dead address so the queue can only grow.
        config = config.with_peer(PeerId::replica(1), "127.0.0.1:1".parse().unwrap());
        let n0 = TcpNetwork::bind(config).unwrap();
        let e0 = n0.endpoint();
        for _ in 0..64 {
            e0.send(PeerId::replica(1), Bytes::from_static(b"0123456789abcdef"))
                .unwrap();
        }
        assert!(n0.net_stats().queue_drops > 0);
    }

    #[test]
    fn tcp_received_frames_carry_tcp_flight_tag() {
        let n0 = local(0, b"s");
        let n1 = local(1, b"s");
        mesh(&[&n0, &n1]);
        let e0 = n0.endpoint();
        let mut e1 = n1.endpoint();
        let flight = Arc::new(FlightRecorder::new("tcp-replica-1"));
        e1.attach_flight(Arc::clone(&flight));
        e0.send(PeerId::replica(1), Bytes::from_static(b"tagged"))
            .unwrap();
        e1.recv_timeout(Duration::from_secs(5)).unwrap();
        let events = flight.events();
        assert_eq!(events.len(), 1);
        let event = events.first().unwrap();
        assert_eq!(event.a, PeerId::replica(0).flight_code());
        assert_eq!(event.b, 6);
        assert_eq!(event.c, frame_tag::RECEIVED_BIT | frame_tag::TCP_BIT);
    }
}
