//! Authenticated admin/telemetry endpoint: the cluster's scrape plane.
//!
//! Every `hlf_node` process can serve an [`AdminServer`] on a port
//! separate from its consensus listener. A scraper (`hlf_top`, the
//! check-harness smoke, external tooling via the Prometheus dump)
//! connects with an [`AdminClient`] and issues four request kinds:
//!
//! * [`AdminRequest::MetricsSnapshot`] — the full registry snapshot.
//! * [`AdminRequest::MetricsDelta`] — the change since the scrape
//!   cursor ([`hlf_obs::ScrapeSession`]), so steady-state 1 Hz scrapes
//!   ship a few hundred bytes instead of the whole registry.
//! * [`AdminRequest::FlightDump`] — drain the node's flight-recorder
//!   ring through the existing `events_since` cursor.
//! * [`AdminRequest::Health`] — a fixed-size gauge block (regency,
//!   pipeline window, decide frontier, straggler suspicions).
//!
//! # Wire format
//!
//! The admin plane deliberately reuses the data plane's security
//! envelope: the same `HELLO`/`ACK` handshake shape as
//! [`tcp`](crate::tcp) under the same pairwise
//! [`Authenticator::for_link`] key, and the same
//! `len(4 LE) | tag(32) | payload` frames under the per-connection
//! session key. The only difference is the handshake domain labels
//! (`hlf-admin-hello` / `hlf-admin-ack` instead of `hlf-hello` /
//! `hlf-ack`), so an admin handshake transcript can never be replayed
//! against a consensus listener or vice versa. Because every
//! connection exchanges fresh nonces, a restarted node re-keys and a
//! scraper's per-connection cursors start over cleanly — stale deltas
//! cannot leak across process generations.
//!
//! Requests are 9 bytes (`kind(1) | cursor(8 LE)`). Responses echo
//! the kind byte and carry a kind-specific body; the metric bodies
//! are the stable snapshot JSON the rest of the tooling already
//! parses, framed by small fixed binary headers (epoch/cursor), so
//! this crate needs no JSON parser of its own.

use crate::{Authenticator, PeerId};
use hlf_crypto::hmac::hmac_sha256_multi;
use hlf_obs::{FlightDump, FlightRecorder, Registry, ScrapeSession, Snapshot};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Handshake / protocol version (shared with the data plane).
const WIRE_VERSION: u8 = 1;
/// Handshake magic (shared with the data plane).
const MAGIC: &[u8; 4] = b"HLFT";
/// HELLO message length: magic 4 + version 1 + kind 1 + id 4 + nonce 16 + tag 32.
const HELLO_LEN: usize = 58;
/// ACK message length: nonce 16 + tag 32.
const ACK_LEN: usize = 48;
/// Domain labels: distinct from the data plane's `hlf-hello`/`hlf-ack`
/// so neither plane's handshake replays against the other.
const HELLO_LABEL: &[u8] = b"hlf-admin-hello";
const ACK_LABEL: &[u8] = b"hlf-admin-ack";
/// Largest accepted admin frame body (tag + payload). Registry
/// snapshots are a few KiB; 4 MiB bounds a full flight-ring dump.
const MAX_FRAME: usize = 4 << 20;
/// How long handshake reads may block before the connection is culled.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// One admin request. `cursor` fields echo the cursor from the
/// previous response of the same kind (0 on the first request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminRequest {
    /// Full registry snapshot.
    MetricsSnapshot,
    /// Changes since the scrape cursor.
    MetricsDelta {
        /// Cursor echoed from the previous delta response.
        cursor: u64,
    },
    /// Flight-recorder events past the `events_since` cursor.
    FlightDump {
        /// Cursor echoed from the previous dump response.
        cursor: u64,
    },
    /// Fixed-size liveness gauges.
    Health,
}

impl AdminRequest {
    const KIND_SNAPSHOT: u8 = 1;
    const KIND_DELTA: u8 = 2;
    const KIND_FLIGHT: u8 = 3;
    const KIND_HEALTH: u8 = 4;

    fn kind(&self) -> u8 {
        match self {
            AdminRequest::MetricsSnapshot => Self::KIND_SNAPSHOT,
            AdminRequest::MetricsDelta { .. } => Self::KIND_DELTA,
            AdminRequest::FlightDump { .. } => Self::KIND_FLIGHT,
            AdminRequest::Health => Self::KIND_HEALTH,
        }
    }

    /// Fixed 9-byte encoding: `kind(1) | cursor(8 LE)`.
    pub fn encode(&self) -> [u8; 9] {
        let cursor = match self {
            AdminRequest::MetricsDelta { cursor } | AdminRequest::FlightDump { cursor } => *cursor,
            _ => 0,
        };
        let mut out = [0u8; 9];
        let (kind_byte, rest) = out.split_at_mut(1);
        kind_byte.copy_from_slice(&[self.kind()]);
        rest.copy_from_slice(&cursor.to_le_bytes());
        out
    }

    /// Parses the encoding; `None` on bad length or unknown kind.
    pub fn decode(buf: &[u8]) -> Option<AdminRequest> {
        if buf.len() != 9 {
            return None;
        }
        let cursor = read_u64(buf, 1)?;
        match buf.first()? {
            &Self::KIND_SNAPSHOT => Some(AdminRequest::MetricsSnapshot),
            &Self::KIND_DELTA => Some(AdminRequest::MetricsDelta { cursor }),
            &Self::KIND_FLIGHT => Some(AdminRequest::FlightDump { cursor }),
            &Self::KIND_HEALTH => Some(AdminRequest::Health),
            _ => None,
        }
    }
}

/// The `Health` response: a fixed block of liveness gauges, assembled
/// by the embedding process (the values come from the node's registry
/// and SMR stats, not from this crate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Current regency (leader epoch) as counted by regency changes.
    pub regency: u64,
    /// Pipeline-window occupancy (in-flight consensus slots).
    pub window: u64,
    /// Decide frontier: highest consensus instance decided.
    pub frontier: u64,
    /// Peers currently flagged by the straggler detector.
    pub suspected: u64,
    /// Total decided instances.
    pub decided: u64,
    /// Microseconds since the node started serving.
    pub uptime_us: u64,
}

impl HealthReport {
    /// Encoded size: six `u64` little-endian words.
    pub const ENCODED_LEN: usize = 48;

    /// Fixed 48-byte little-endian encoding.
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        for (i, v) in [
            self.regency,
            self.window,
            self.frontier,
            self.suspected,
            self.decided,
            self.uptime_us,
        ]
        .iter()
        .enumerate()
        {
            if let Some(part) = out.get_mut(i * 8..i * 8 + 8) {
                part.copy_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses the encoding; `None` on bad length.
    pub fn decode(buf: &[u8]) -> Option<HealthReport> {
        if buf.len() != Self::ENCODED_LEN {
            return None;
        }
        Some(HealthReport {
            regency: read_u64(buf, 0)?,
            window: read_u64(buf, 8)?,
            frontier: read_u64(buf, 16)?,
            suspected: read_u64(buf, 24)?,
            decided: read_u64(buf, 32)?,
            uptime_us: read_u64(buf, 40)?,
        })
    }

    /// Compact JSON for human-facing dumps (`hlf_top --once`, smokes).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"regency\":{},\"window\":{},\"frontier\":{},\"suspected\":{},\"decided\":{},\"uptime_us\":{}}}",
            self.regency, self.window, self.frontier, self.suspected, self.decided, self.uptime_us
        )
    }
}

/// A delta-scrape reply: the serving process' epoch plus the change
/// since the client's previous delta.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaReply {
    /// Identifies the serving process instance; a change means the
    /// node restarted and accumulated state must be rebased.
    pub epoch: u64,
    /// Metrics that moved since the last exchange (full snapshot on
    /// the first exchange or after a cursor reset).
    pub delta: Snapshot,
}

/// What an [`AdminServer`] serves from: the node's registry, its
/// flight recorder (when one is attached) and a health closure the
/// embedder assembles from whatever stats it owns.
#[derive(Clone)]
pub struct AdminSources {
    /// Registry answering `MetricsSnapshot` / `MetricsDelta`.
    pub registry: Arc<Registry>,
    /// Flight ring answering `FlightDump`; `None` serves empty dumps.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Called per `Health` request.
    pub health: Arc<dyn Fn() -> HealthReport + Send + Sync>,
}

struct AdminShared {
    id: PeerId,
    secret: Vec<u8>,
    sources: AdminSources,
    epoch: u64,
    shutdown: AtomicBool,
    streams: Mutex<Vec<TcpStream>>,
    nonce_counter: AtomicU64,
}

/// The serving side of the admin plane: own listener, one handler
/// thread per connection, per-connection scrape cursors.
pub struct AdminServer {
    shared: Arc<AdminShared>,
    local_addr: SocketAddr,
}

impl AdminServer {
    /// Binds the admin listener and starts accepting scrapers.
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(
        id: PeerId,
        listen: SocketAddr,
        secret: impl Into<Vec<u8>>,
        sources: AdminSources,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(AdminShared {
            id,
            secret: secret.into(),
            sources,
            epoch: fresh_epoch(),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            nonce_counter: AtomicU64::new(1),
        });
        let acceptor = Arc::clone(&shared);
        // lint:allow(detach): the acceptor is detached; shutdown() sets the flag and kicks the listener with a loopback connect to unblock accept
        std::thread::Builder::new()
            .name(format!("admin-accept-{id}"))
            .spawn(move || acceptor_loop(&acceptor, &listener))?;
        Ok(AdminServer { shared, local_addr })
    }

    /// The bound admin address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server instance's epoch (what delta replies carry).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Stops accepting and closes every admin connection. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Drain under the lock, shut the sockets down outside it:
        // `shutdown()` is a syscall that can stall on a wedged scraper,
        // and serve_connection threads take `streams` when registering.
        let drained: Vec<TcpStream> = self
            .shared
            .streams
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .drain(..)
            .collect();
        for stream in drained {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A unique-per-instance epoch: wall-clock nanoseconds plus a process
/// counter, so two servers created back-to-back still differ.
fn fresh_epoch() -> u64 {
    static EPOCH_COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos.wrapping_add(EPOCH_COUNTER.fetch_add(1, Ordering::Relaxed))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn acceptor_loop(shared: &Arc<AdminShared>, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::Acquire) {
        let Ok((stream, addr)) = listener.accept() else {
            continue;
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let handler = Arc::clone(shared);
        // lint:allow(detach): per-scraper threads are detached; shutdown() closes their registered sockets, which ends serve_connection
        std::thread::Builder::new()
            .name(format!("admin-serve-{addr}"))
            .spawn(move || serve_connection(&handler, stream))
            .ok();
    }
}

/// Acceptor-side handshake + request loop for one scraper connection.
fn serve_connection(shared: &Arc<AdminShared>, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }

    // HELLO (same layout as the data plane, admin domain label).
    let mut hello = [0u8; HELLO_LEN];
    if stream.read_exact(&mut hello).is_err() {
        return;
    }
    let (body, hello_tag) = hello.split_at(HELLO_LEN - 32);
    let (magic, rest) = body.split_at(4);
    let (version_kind, rest) = rest.split_at(2);
    let (id_bytes, nonce_i) = rest.split_at(4);
    if magic != MAGIC || version_kind.first() != Some(&WIRE_VERSION) {
        return;
    }
    let raw_id = u32::from_le_bytes(id_bytes.try_into().unwrap_or_default());
    let peer = match version_kind.get(1) {
        Some(0) => PeerId::Replica(raw_id),
        Some(1) => PeerId::Client(raw_id),
        _ => return,
    };
    let link = Authenticator::for_link(&shared.secret, shared.id, peer);
    let expect = link.tag_labeled(HELLO_LABEL, &[body]);
    if !crate::constant_time_eq(hello_tag, &expect) {
        return;
    }

    // ACK + session key.
    let nonce_a = fresh_nonce(shared);
    let mut ack = [0u8; ACK_LEN];
    let ack_tag = link.tag_labeled(ACK_LABEL, &[nonce_i, &nonce_a]);
    ack.split_at_mut(16).0.copy_from_slice(&nonce_a);
    ack.split_at_mut(16).1.copy_from_slice(&ack_tag);
    if stream.write_all(&ack).is_err() || stream.set_read_timeout(None).is_err() {
        return;
    }
    let session = link.rekey(nonce_i, &nonce_a);
    if let Ok(clone) = stream.try_clone() {
        shared
            .streams
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(clone);
    }
    hlf_obs::debug!("admin: accepted scraper {peer} on {}", shared.id);

    // Request loop. Scrape cursors are per connection: a reconnect
    // (and therefore a node or scraper restart) starts from scratch.
    let mut scrape = ScrapeSession::new(shared.epoch);
    while !shared.shutdown.load(Ordering::Acquire) {
        let Ok(frame) = read_frame(&mut stream) else {
            break;
        };
        let Some(request_bytes) = session.open(&frame) else {
            break;
        };
        let Some(request) = AdminRequest::decode(request_bytes.as_ref()) else {
            break;
        };
        let response = build_response(shared, &mut scrape, request);
        if write_frame(&mut stream, &session, &response).is_err() {
            break;
        }
    }
}

/// Builds one response body (kind echo + kind-specific payload).
fn build_response(
    shared: &AdminShared,
    scrape: &mut ScrapeSession,
    request: AdminRequest,
) -> Vec<u8> {
    let mut out = vec![request.kind()];
    match request {
        AdminRequest::MetricsSnapshot => {
            out.extend_from_slice(shared.sources.registry.snapshot().to_json().as_bytes());
        }
        AdminRequest::MetricsDelta { cursor } => {
            let (new_cursor, delta) = scrape.serve(shared.sources.registry.snapshot(), cursor);
            out.extend_from_slice(&shared.epoch.to_le_bytes());
            out.extend_from_slice(&new_cursor.to_le_bytes());
            out.extend_from_slice(delta.to_json().as_bytes());
        }
        AdminRequest::FlightDump { cursor } => {
            let (new_cursor, dump) = match &shared.sources.flight {
                Some(flight) => {
                    let (new_cursor, events) = flight.events_since(cursor);
                    (
                        new_cursor,
                        FlightDump {
                            node: flight.name().to_string(),
                            reason: "admin-scrape".to_string(),
                            at_us: flight.now_us(),
                            events,
                        },
                    )
                }
                None => (
                    cursor,
                    FlightDump {
                        node: String::new(),
                        reason: "no-flight-recorder".to_string(),
                        at_us: 0,
                        events: Vec::new(),
                    },
                ),
            };
            out.extend_from_slice(&new_cursor.to_le_bytes());
            out.extend_from_slice(dump.to_json().as_bytes());
        }
        AdminRequest::Health => {
            out.extend_from_slice(&(shared.sources.health)().encode());
        }
    }
    out
}

/// Unique per-connection nonce (uniqueness, not unpredictability, is
/// what re-keying needs) — same construction as the data plane.
fn fresh_nonce(shared: &AdminShared) -> [u8; 16] {
    let count = shared.nonce_counter.fetch_add(1, Ordering::Relaxed);
    nonce_from(&shared.secret, count, shared.id)
}

fn nonce_from(secret: &[u8], count: u64, id: PeerId) -> [u8; 16] {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let digest = hmac_sha256_multi(
        secret,
        &[
            b"hlf-admin-nonce",
            &count.to_le_bytes(),
            &now.to_le_bytes(),
            &id.flight_code().to_le_bytes(),
        ],
    );
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(digest.as_bytes().split_at(16).0);
    nonce
}

/// Reads one `len | sealed` frame off the wire.
fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(32..=MAX_FRAME).contains(&len) {
        return Err(invalid("admin frame length out of range"));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Seals `payload` under `session` and writes it as one frame.
fn write_frame(stream: &mut TcpStream, session: &Authenticator, payload: &[u8]) -> io::Result<()> {
    let sealed = session.seal(payload);
    let mut msg = Vec::with_capacity(4 + sealed.len());
    msg.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
    msg.extend_from_slice(sealed.as_ref());
    stream.write_all(&msg)
}

/// The scraping side: one authenticated connection to one node's
/// admin endpoint, with the delta/flight cursors tracked internally —
/// callers just call [`metrics_delta`](AdminClient::metrics_delta) /
/// [`flight_events`](AdminClient::flight_events) repeatedly. Dropping
/// the client (or the node restarting) drops the cursors with the
/// connection, which is exactly the reset semantics the protocol
/// wants.
pub struct AdminClient {
    stream: TcpStream,
    session: Authenticator,
    delta_cursor: u64,
    flight_cursor: u64,
}

impl AdminClient {
    /// Dials `addr` and handshakes as `me` against the node `server`,
    /// under the shared cluster `secret`.
    ///
    /// # Errors
    ///
    /// Socket errors, or `InvalidData` when the ACK fails
    /// authentication (wrong secret or wrong peer identity).
    pub fn connect(
        addr: SocketAddr,
        secret: &[u8],
        me: PeerId,
        server: PeerId,
    ) -> io::Result<AdminClient> {
        static CLIENT_NONCE: AtomicU64 = AtomicU64::new(1);
        let mut stream = TcpStream::connect_timeout(&addr, HANDSHAKE_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        let link = Authenticator::for_link(secret, me, server);

        let nonce_i = nonce_from(secret, CLIENT_NONCE.fetch_add(1, Ordering::Relaxed), me);
        let mut hello = [0u8; HELLO_LEN];
        let (kind, raw_id) = match me {
            PeerId::Replica(id) => (0u8, id),
            PeerId::Client(id) => (1u8, id),
        };
        {
            let (magic_part, rest) = hello.split_at_mut(4);
            magic_part.copy_from_slice(MAGIC);
            let (vk_part, rest) = rest.split_at_mut(2);
            vk_part.copy_from_slice(&[WIRE_VERSION, kind]);
            let (id_part, rest) = rest.split_at_mut(4);
            id_part.copy_from_slice(&raw_id.to_le_bytes());
            rest.split_at_mut(16).0.copy_from_slice(&nonce_i);
        }
        let body_len = HELLO_LEN - 32;
        let tag = link.tag_labeled(HELLO_LABEL, &[hello.split_at(body_len).0]);
        hello.split_at_mut(body_len).1.copy_from_slice(&tag);
        stream.write_all(&hello)?;

        let mut ack = [0u8; ACK_LEN];
        stream.read_exact(&mut ack)?;
        let (nonce_a, ack_tag) = ack.split_at(16);
        let expect = link.tag_labeled(ACK_LABEL, &[&nonce_i, nonce_a]);
        if !crate::constant_time_eq(ack_tag, &expect) {
            return Err(invalid("admin handshake ack failed authentication"));
        }
        let session = link.rekey(&nonce_i, nonce_a);
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        Ok(AdminClient {
            stream,
            session,
            delta_cursor: 0,
            flight_cursor: 0,
        })
    }

    /// One request/response exchange; returns the kind-checked body.
    fn exchange(&mut self, request: AdminRequest) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, &self.session, &request.encode())?;
        let frame = read_frame(&mut self.stream)?;
        let response = self
            .session
            .open(&frame)
            .ok_or_else(|| invalid("admin response failed authentication"))?;
        let (kind, body) = response
            .as_ref()
            .split_first()
            .ok_or_else(|| invalid("empty admin response"))?;
        if *kind != request.kind() {
            return Err(invalid("admin response kind mismatch"));
        }
        Ok(body.to_vec())
    }

    /// Fetches the node's full registry snapshot.
    ///
    /// # Errors
    ///
    /// Socket errors or malformed/forged responses (`InvalidData`).
    pub fn metrics_snapshot(&mut self) -> io::Result<Snapshot> {
        let body = self.exchange(AdminRequest::MetricsSnapshot)?;
        let text = std::str::from_utf8(&body).map_err(|_| invalid("snapshot is not UTF-8"))?;
        Snapshot::from_json(text).map_err(|err| invalid(&format!("bad snapshot json: {err}")))
    }

    /// Fetches the change since the previous call on this connection
    /// (the full snapshot on the first call).
    ///
    /// # Errors
    ///
    /// Socket errors or malformed/forged responses (`InvalidData`).
    pub fn metrics_delta(&mut self) -> io::Result<DeltaReply> {
        let body = self.exchange(AdminRequest::MetricsDelta {
            cursor: self.delta_cursor,
        })?;
        let epoch = read_u64(&body, 0).ok_or_else(|| invalid("short delta response"))?;
        let cursor = read_u64(&body, 8).ok_or_else(|| invalid("short delta response"))?;
        let json = body.get(16..).ok_or_else(|| invalid("short delta response"))?;
        let text = std::str::from_utf8(json).map_err(|_| invalid("delta is not UTF-8"))?;
        let delta =
            Snapshot::from_json(text).map_err(|err| invalid(&format!("bad delta json: {err}")))?;
        self.delta_cursor = cursor;
        Ok(DeltaReply { epoch, delta })
    }

    /// Drains flight-recorder events recorded since the previous call
    /// on this connection.
    ///
    /// # Errors
    ///
    /// Socket errors or malformed/forged responses (`InvalidData`).
    pub fn flight_events(&mut self) -> io::Result<FlightDump> {
        let body = self.exchange(AdminRequest::FlightDump {
            cursor: self.flight_cursor,
        })?;
        let cursor = read_u64(&body, 0).ok_or_else(|| invalid("short flight response"))?;
        let json = body.get(8..).ok_or_else(|| invalid("short flight response"))?;
        let text = std::str::from_utf8(json).map_err(|_| invalid("dump is not UTF-8"))?;
        let dump =
            FlightDump::from_json(text).map_err(|err| invalid(&format!("bad dump json: {err}")))?;
        self.flight_cursor = cursor;
        Ok(dump)
    }

    /// Fetches the fixed health gauges.
    ///
    /// # Errors
    ///
    /// Socket errors or malformed/forged responses (`InvalidData`).
    pub fn health(&mut self) -> io::Result<HealthReport> {
        let body = self.exchange(AdminRequest::Health)?;
        HealthReport::decode(&body).ok_or_else(|| invalid("bad health response"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlf_obs::EventKind;

    fn sources(registry: Arc<Registry>, flight: Option<Arc<FlightRecorder>>) -> AdminSources {
        AdminSources {
            registry,
            flight,
            health: Arc::new(|| HealthReport {
                regency: 1,
                window: 2,
                frontier: 3,
                suspected: 0,
                decided: 4,
                uptime_us: 5,
            }),
        }
    }

    fn serve(registry: Arc<Registry>, flight: Option<Arc<FlightRecorder>>) -> AdminServer {
        AdminServer::bind(
            PeerId::replica(0),
            "127.0.0.1:0".parse().unwrap(),
            b"admin-test".as_slice(),
            sources(registry, flight),
        )
        .unwrap()
    }

    fn client(server: &AdminServer) -> AdminClient {
        AdminClient::connect(
            server.local_addr(),
            b"admin-test",
            PeerId::client(9000),
            PeerId::replica(0),
        )
        .unwrap()
    }

    #[test]
    fn request_encoding_round_trips() {
        for request in [
            AdminRequest::MetricsSnapshot,
            AdminRequest::MetricsDelta { cursor: 7 },
            AdminRequest::FlightDump { cursor: u64::MAX },
            AdminRequest::Health,
        ] {
            assert_eq!(AdminRequest::decode(&request.encode()), Some(request));
        }
        assert_eq!(AdminRequest::decode(&[]), None);
        assert_eq!(AdminRequest::decode(&[9; 9]), None);
    }

    #[test]
    fn health_report_encoding_round_trips() {
        let report = HealthReport {
            regency: 1,
            window: 2,
            frontier: u64::MAX,
            suspected: 4,
            decided: 5,
            uptime_us: 6,
        };
        assert_eq!(HealthReport::decode(&report.encode()), Some(report));
        assert_eq!(HealthReport::decode(&[0; 47]), None);
    }

    #[test]
    fn snapshot_and_health_over_socket() {
        let registry = Registry::new("node-0");
        registry.counter("a.b.count").add(42);
        let server = serve(Arc::clone(&registry), None);
        let mut client = client(&server);

        let snap = client.metrics_snapshot().unwrap();
        assert_eq!(snap.registry, "node-0");
        assert_eq!(snap.counter_value("a.b.count"), Some(42));

        let health = client.health().unwrap();
        assert_eq!(health.frontier, 3);
        assert_eq!(health.decided, 4);
        server.shutdown();
    }

    #[test]
    fn deltas_ship_only_movement() {
        let registry = Registry::new("node-0");
        let counter = registry.counter("a.b.count");
        counter.add(10);
        let server = serve(Arc::clone(&registry), None);
        let mut client = client(&server);

        // First delta: the full snapshot.
        let first = client.metrics_delta().unwrap();
        assert_eq!(first.epoch, server.epoch());
        assert_eq!(first.delta.counter_value("a.b.count"), Some(10));

        // Nothing moved: empty delta.
        let idle = client.metrics_delta().unwrap();
        assert!(idle.delta.metrics.is_empty(), "{:?}", idle.delta);

        // Movement ships as a difference.
        counter.add(5);
        let moved = client.metrics_delta().unwrap();
        assert_eq!(moved.delta.counter_value("a.b.count"), Some(5));
        server.shutdown();
    }

    /// A restarted node = a fresh process = a fresh handshake and a
    /// fresh epoch. The reconnected scraper gets a full snapshot (no
    /// negative garbage from differencing across generations).
    #[test]
    fn restart_resets_cursor_and_changes_epoch() {
        let registry_a = Registry::new("node-0");
        registry_a.counter("a.b.count").add(100);
        let server_a = serve(registry_a, None);
        let addr_kind = (PeerId::client(9000), PeerId::replica(0));
        let mut client_a = client(&server_a);
        let before = client_a.metrics_delta().unwrap();
        assert_eq!(before.delta.counter_value("a.b.count"), Some(100));
        let epoch_a = before.epoch;
        server_a.shutdown();
        drop(server_a);

        // "Restart": a new process instance, same logical node, lower
        // counter value than the scraper has already seen.
        let registry_b = Registry::new("node-0");
        registry_b.counter("a.b.count").add(3);
        let server_b = serve(registry_b, None);
        let mut client_b = AdminClient::connect(
            server_b.local_addr(),
            b"admin-test",
            addr_kind.0,
            addr_kind.1,
        )
        .unwrap();
        let after = client_b.metrics_delta().unwrap();
        assert_ne!(after.epoch, epoch_a, "epoch must change across restarts");
        // Full value, not 3 - 100 wrapped into garbage.
        assert_eq!(after.delta.counter_value("a.b.count"), Some(3));
        server_b.shutdown();
    }

    #[test]
    fn flight_events_drain_through_cursor() {
        let registry = Registry::new("node-0");
        let flight = Arc::new(FlightRecorder::new("node-0"));
        flight.record_now(EventKind::Decide, 1, 5, 100);
        flight.record_now(EventKind::Decide, 2, 5, 110);
        let server = serve(registry, Some(Arc::clone(&flight)));
        let mut client = client(&server);

        let first = client.flight_events().unwrap();
        assert_eq!(first.node, "node-0");
        assert_eq!(first.events.len(), 2);

        // Cursor advanced: nothing new.
        assert!(client.flight_events().unwrap().events.is_empty());

        // New events drain incrementally.
        flight.record_now(EventKind::Decide, 3, 5, 120);
        let more = client.flight_events().unwrap();
        assert_eq!(more.events.len(), 1);
        assert_eq!(more.events.first().map(|e| e.a), Some(3));
        server.shutdown();
    }

    #[test]
    fn wrong_secret_cannot_connect() {
        let registry = Registry::new("node-0");
        let server = serve(registry, None);
        let err = AdminClient::connect(
            server.local_addr(),
            b"not-the-secret",
            PeerId::client(9000),
            PeerId::replica(0),
        );
        assert!(err.is_err());
        server.shutdown();
    }
}
