//! In-process message hub: the deterministic, fault-injectable
//! backend used by tests, simulations and single-process benchmarks.
//!
//! Every participant [`join`](Network::join)s the hub and gets an
//! [`Endpoint`] whose inbound mailbox is an unbounded crossbeam
//! channel. Sends are synchronous hand-offs into the destination
//! mailbox, subject to injected faults (blocked links, isolation,
//! deterministic probabilistic drops).

use crate::{Backend, Endpoint, PeerId, TransportError};
use crossbeam::channel::{self, Sender};
use hlf_wire::{BufferPool, Bytes};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Deterministic SplitMix64 stream for probabilistic drop decisions:
/// same seed, same drop pattern, so partition tests are reproducible.
#[derive(Debug, Default)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Injected network faults, applied to every send through the hub.
#[derive(Debug, Default)]
struct FaultState {
    /// Directed links that silently drop traffic.
    blocked_links: HashSet<(PeerId, PeerId)>,
    /// Peers cut off in both directions.
    isolated: HashSet<PeerId>,
    /// Probability in [0, 1] that any send is dropped.
    drop_probability: f64,
    rng: SplitMix64,
}

impl FaultState {
    /// Returns `true` if this send should be dropped.
    fn should_drop(&mut self, from: PeerId, to: PeerId) -> bool {
        if self.isolated.contains(&from) || self.isolated.contains(&to) {
            return true;
        }
        if self.blocked_links.contains(&(from, to)) {
            return true;
        }
        self.drop_probability > 0.0 && self.rng.next_f64() < self.drop_probability
    }
}

/// Shared hub state behind every in-process [`Endpoint`].
pub(crate) struct Hub {
    peers: RwLock<HashMap<PeerId, Sender<(PeerId, Bytes)>>>,
    faults: Mutex<FaultState>,
    /// Pool shared by every endpoint on this hub, so send buffers
    /// recycle no matter which participant allocated them.
    pub(crate) pool: BufferPool,
}

impl Hub {
    pub(crate) fn send(
        &self,
        from: PeerId,
        to: PeerId,
        payload: Bytes,
    ) -> Result<(), TransportError> {
        if self.faults.lock().should_drop(from, to) {
            return Err(TransportError::Dropped);
        }
        let peers = self.peers.read();
        let tx = peers.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        tx.send((from, payload))
            .map_err(|_| TransportError::Disconnected(to))
    }
}

/// Handle on an in-process hub. Cheap to clone; all clones share the
/// same peer table, fault state and buffer pool.
#[derive(Clone)]
pub struct Network {
    hub: Arc<Hub>,
}

impl Default for Network {
    fn default() -> Network {
        Network::new()
    }
}

impl Network {
    /// Creates an empty hub with a default-sized buffer pool.
    pub fn new() -> Network {
        Network {
            hub: Arc::new(Hub {
                peers: RwLock::new(HashMap::new()),
                faults: Mutex::new(FaultState::default()),
                pool: BufferPool::default(),
            }),
        }
    }

    /// Registers `id` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` already joined — two participants claiming one
    /// identity is a harness bug, never a runtime condition.
    pub fn join(&self, id: PeerId) -> Endpoint {
        let (tx, rx) = channel::unbounded();
        let mut peers = self.hub.peers.write();
        assert!(
            peers.insert(id, tx).is_none(),
            "peer {id} joined the network twice"
        );
        drop(peers);
        Endpoint::new(id, Backend::Hub(Arc::clone(&self.hub)), rx)
    }

    /// Removes `id` from the hub, as if its process exited. Subsequent
    /// sends to it fail with [`TransportError::UnknownPeer`]; the peer
    /// may [`join`](Network::join) again later (crash/restart tests).
    pub fn part(&self, id: PeerId) {
        self.hub.peers.write().remove(&id);
    }

    /// Silently drops all traffic on the directed link `from -> to`.
    pub fn block_link(&self, from: PeerId, to: PeerId) {
        self.hub.faults.lock().blocked_links.insert((from, to));
    }

    /// Clears every blocked link.
    pub fn unblock_all(&self) {
        self.hub.faults.lock().blocked_links.clear();
    }

    /// Cuts `id` off in both directions.
    pub fn isolate(&self, id: PeerId) {
        self.hub.faults.lock().isolated.insert(id);
    }

    /// Reconnects a previously [`isolate`](Network::isolate)d peer.
    pub fn heal(&self, id: PeerId) {
        self.hub.faults.lock().isolated.remove(&id);
    }

    /// Drops every send with probability `p`, deterministically from
    /// `seed`.
    pub fn set_drop_probability(&self, p: f64, seed: u64) {
        let mut faults = self.hub.faults.lock();
        faults.drop_probability = p.clamp(0.0, 1.0);
        faults.rng = SplitMix64 { state: seed };
    }

    /// Splits the network into two halves that cannot talk to each
    /// other (both directions blocked between every cross pair).
    pub fn partition(&self, side_a: &[PeerId], side_b: &[PeerId]) {
        let mut faults = self.hub.faults.lock();
        for &a in side_a {
            for &b in side_b {
                faults.blocked_links.insert((a, b));
                faults.blocked_links.insert((b, a));
            }
        }
    }

    /// Currently joined peers, in unspecified order.
    pub fn peers(&self) -> Vec<PeerId> {
        self.hub.peers.read().keys().copied().collect()
    }

    /// The hub-wide buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.hub.pool
    }
}
