//! In-process point-to-point transport for threaded deployments.
//!
//! The LAN experiments of the paper (§6.2) run the ordering cluster on a
//! Gigabit-Ethernet testbed. Our threaded reproduction replaces sockets
//! with crossbeam channels: each process (replica, frontend, client)
//! owns an [`Endpoint`] and exchanges length-delimited byte messages
//! with any other endpoint registered on the same [`Network`] hub.
//!
//! The hub supports the fault injection the integration tests need —
//! blocked links, probabilistic drops, isolated nodes — and optional
//! HMAC authentication mirroring BFT-SMaRt's authenticated channels.
//!
//! # Examples
//!
//! ```
//! use hlf_transport::{Network, PeerId};
//! use std::time::Duration;
//!
//! let network = Network::new();
//! let a = network.join(PeerId::replica(0));
//! let b = network.join(PeerId::replica(1));
//! a.send(PeerId::replica(1), hlf_wire::Bytes::from_static(b"hello")).unwrap();
//! let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(from, PeerId::replica(0));
//! assert_eq!(&msg[..], b"hello");
//! ```

use hlf_wire::{BufferPool, Bytes};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use hlf_crypto::hmac::hmac_sha256_multi;
use hlf_obs::flight::EventKind;
use hlf_obs::FlightRecorder;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identity of a transport participant.
///
/// The ordering service has two kinds of participants: cluster replicas
/// and frontends (SMR clients). Keeping them in one address space lets
/// the custom replier push blocks directly to frontends.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PeerId {
    /// An ordering node (BFT-SMaRt replica).
    Replica(u32),
    /// A frontend / client.
    Client(u32),
}

impl PeerId {
    /// Shorthand constructor for a replica id.
    pub fn replica(id: u32) -> PeerId {
        PeerId::Replica(id)
    }

    /// Shorthand constructor for a client id.
    pub fn client(id: u32) -> PeerId {
        PeerId::Client(id)
    }

    /// Returns `true` for replica ids.
    pub fn is_replica(&self) -> bool {
        matches!(self, PeerId::Replica(_))
    }

    /// Compact form used in flight-recorder events: replicas map to
    /// their id, clients to `id | 1 << 32`.
    pub fn flight_code(&self) -> u64 {
        match self {
            PeerId::Replica(id) => *id as u64,
            PeerId::Client(id) => *id as u64 | (1 << 32),
        }
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerId::Replica(id) => write!(f, "replica-{id}"),
            PeerId::Client(id) => write!(f, "client-{id}"),
        }
    }
}

/// Transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Destination is not registered on the hub.
    UnknownPeer(PeerId),
    /// Destination endpoint was dropped.
    Disconnected(PeerId),
    /// No message arrived before the timeout.
    Timeout,
    /// The hub dropped the message due to an injected fault. Callers
    /// usually treat this as success (the network "lost" the packet).
    Dropped,
    /// Message failed authentication.
    BadAuthenticator(PeerId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::Disconnected(p) => write!(f, "peer {p} disconnected"),
            TransportError::Timeout => f.write_str("receive timed out"),
            TransportError::Dropped => f.write_str("message dropped by fault injection"),
            TransportError::BadAuthenticator(p) => {
                write!(f, "bad message authenticator from {p}")
            }
        }
    }
}

impl Error for TransportError {}

/// Per-endpoint traffic counters.
#[derive(Debug, Default)]
pub struct TrafficStats {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
}

impl TrafficStats {
    /// Messages sent by this endpoint.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }
    /// Payload bytes sent by this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
    /// Messages received by this endpoint.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }
    /// Payload bytes received by this endpoint.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct FaultState {
    blocked_links: Vec<(PeerId, PeerId)>,
    isolated: Vec<PeerId>,
    drop_probability: f64,
    rng_state: u64,
}

impl FaultState {
    fn next_f64(&mut self) -> f64 {
        // SplitMix64 step; determinism is per-hub, guarded by the mutex.
        self.rng_state = self.rng_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn should_drop(&mut self, from: PeerId, to: PeerId) -> bool {
        if self.blocked_links.contains(&(from, to)) {
            return true;
        }
        if self.isolated.contains(&from) || self.isolated.contains(&to) {
            return true;
        }
        self.drop_probability > 0.0 && self.next_f64() < self.drop_probability
    }
}

struct Hub {
    peers: RwLock<HashMap<PeerId, Sender<(PeerId, Bytes)>>>,
    faults: Mutex<FaultState>,
    /// Free-list of send buffers shared by every endpoint on this hub.
    /// Buffers wrapped through it return to the list when the last
    /// [`Bytes`] view of a message drops, so steady-state traffic
    /// recycles a small working set instead of allocating per message.
    pool: BufferPool,
}

/// The in-process network hub endpoints attach to.
///
/// Cloning shares the hub.
#[derive(Clone)]
pub struct Network {
    hub: Arc<Hub>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} peers)", self.hub.peers.read().len())
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty hub.
    pub fn new() -> Network {
        Network {
            hub: Arc::new(Hub {
                peers: RwLock::new(HashMap::new()),
                faults: Mutex::new(FaultState::default()),
                pool: BufferPool::default(),
            }),
        }
    }

    /// Registers `id` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered; ids must be unique.
    pub fn join(&self, id: PeerId) -> Endpoint {
        let (tx, rx) = channel::unbounded();
        let mut peers = self.hub.peers.write();
        let previous = peers.insert(id, tx);
        assert!(previous.is_none(), "peer {id} joined twice");
        Endpoint {
            id,
            hub: Arc::clone(&self.hub),
            incoming: rx,
            stats: Arc::new(TrafficStats::default()),
            flight: None,
        }
    }

    /// Blocks the directed link `from -> to`.
    pub fn block_link(&self, from: PeerId, to: PeerId) {
        self.hub.faults.lock().blocked_links.push((from, to));
    }

    /// Removes all link blocks.
    pub fn unblock_all(&self) {
        self.hub.faults.lock().blocked_links.clear();
    }

    /// Drops all traffic to and from `peer`.
    pub fn isolate(&self, peer: PeerId) {
        self.hub.faults.lock().isolated.push(peer);
    }

    /// Restores traffic for `peer`.
    pub fn heal(&self, peer: PeerId) {
        self.hub.faults.lock().isolated.retain(|p| *p != peer);
    }

    /// Sets a uniform message-drop probability (deterministic stream
    /// seeded by `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_drop_probability(&self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let mut faults = self.hub.faults.lock();
        faults.drop_probability = p;
        faults.rng_state = seed;
    }

    /// Removes a peer's mailbox (simulates a process exit).
    pub fn part(&self, id: PeerId) {
        self.hub.peers.write().remove(&id);
    }

    /// Currently registered peers, in unspecified order.
    pub fn peers(&self) -> Vec<PeerId> {
        self.hub.peers.read().keys().copied().collect()
    }

    /// The hub-wide send-buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.hub.pool
    }
}

/// One participant's handle on the network.
pub struct Endpoint {
    id: PeerId,
    hub: Arc<Hub>,
    incoming: Receiver<(PeerId, Bytes)>,
    stats: Arc<TrafficStats>,
    /// Optional flight recorder: every received frame is logged as an
    /// [`EventKind::Frame`] event so anomaly dumps show the message
    /// arrivals leading up to the anomaly. `None` costs nothing.
    flight: Option<Arc<FlightRecorder>>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.id)
    }
}

/// A cloneable, send-only handle derived from an [`Endpoint`].
///
/// Receiving stays single-consumer on the endpoint; senders can be
/// handed to worker threads (the ordering service's signing pool sends
/// finished blocks straight to frontends from its workers).
#[derive(Clone)]
pub struct SenderHandle {
    id: PeerId,
    hub: Arc<Hub>,
    stats: Arc<TrafficStats>,
}

impl fmt::Debug for SenderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SenderHandle({})", self.id)
    }
}

impl SenderHandle {
    /// The originating endpoint's identity.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The hub-wide send-buffer pool (see [`Endpoint::pool`]).
    pub fn pool(&self) -> &BufferPool {
        &self.hub.pool
    }

    /// Sends `payload` to `to` (same semantics as [`Endpoint::send`]).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::send`].
    pub fn send(&self, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        if self.hub.faults.lock().should_drop(self.id, to) {
            return Err(TransportError::Dropped);
        }
        let peers = self.hub.peers.read();
        let sender = peers.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        sender
            .send((self.id, payload))
            .map_err(|_| TransportError::Disconnected(to))
    }
}

impl Endpoint {
    /// This endpoint's identity.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The hub-wide send-buffer pool. Encode outgoing messages through
    /// it (e.g. [`hlf_wire::to_pooled_bytes`]) so their buffers recycle
    /// once delivered.
    pub fn pool(&self) -> &BufferPool {
        &self.hub.pool
    }

    /// A cloneable send-only handle for worker threads.
    pub fn sender(&self) -> SenderHandle {
        SenderHandle {
            id: self.id,
            hub: Arc::clone(&self.hub),
            stats: Arc::clone(&self.stats),
        }
    }

    /// Shared traffic counters (clone the `Arc` to watch from outside).
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Attaches a flight recorder; every subsequently received frame is
    /// logged as an [`EventKind::Frame`] event (`a` = sender's
    /// [`PeerId::flight_code`], `b` = payload bytes).
    pub fn attach_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Sends `payload` to `to`.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnknownPeer`] if the destination never joined,
    /// [`TransportError::Disconnected`] if its endpoint was dropped, and
    /// [`TransportError::Dropped`] if fault injection consumed the
    /// message.
    pub fn send(&self, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        if self.hub.faults.lock().should_drop(self.id, to) {
            return Err(TransportError::Dropped);
        }
        let peers = self.hub.peers.read();
        let sender = peers.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        sender
            .send((self.id, payload))
            .map_err(|_| TransportError::Disconnected(to))
    }

    /// Sends `payload` to every peer in `recipients`, ignoring
    /// individual delivery failures (the BFT layers tolerate loss).
    pub fn multicast(&self, recipients: &[PeerId], payload: &Bytes) {
        for &to in recipients {
            let _ = self.send(to, payload.clone());
        }
    }

    /// Receives the next message, blocking indefinitely.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the hub is gone.
    pub fn recv(&self) -> Result<(PeerId, Bytes), TransportError> {
        let (from, payload) = self
            .incoming
            .recv()
            .map_err(|_| TransportError::Disconnected(self.id))?;
        self.note_received(from, &payload);
        Ok((from, payload))
    }

    /// Receives with a timeout.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrives in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(PeerId, Bytes), TransportError> {
        match self.incoming.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.note_received(from, &payload);
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected(self.id)),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(PeerId, Bytes)> {
        match self.incoming.try_recv() {
            Ok((from, payload)) => {
                self.note_received(from, &payload);
                Some((from, payload))
            }
            Err(_) => None,
        }
    }

    /// Number of queued messages.
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }

    fn note_received(&self, from: PeerId, payload: &Bytes) {
        self.stats.messages_received.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(flight) = &self.flight {
            flight.record_now(
                EventKind::Frame,
                from.flight_code(),
                payload.len() as u64,
                0,
            );
        }
    }
}

/// Pairwise HMAC session authentication, mirroring the authenticated
/// channels BFT-SMaRt establishes between replicas.
///
/// Both sides derive the same link key from their shared secret seeds;
/// [`seal`](Authenticator::seal) prepends a 32-byte tag that
/// [`open`](Authenticator::open) verifies.
#[derive(Clone, Debug)]
pub struct Authenticator {
    key: [u8; 32],
}

impl Authenticator {
    /// Derives the symmetric link key for the unordered pair `{a, b}`
    /// from a cluster-wide secret.
    pub fn for_link(cluster_secret: &[u8], a: PeerId, b: PeerId) -> Authenticator {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let label = format!("link:{lo}:{hi}");
        let key = hmac_sha256_multi(cluster_secret, &[label.as_bytes()]);
        Authenticator {
            key: *key.as_bytes(),
        }
    }

    /// Prepends the authentication tag to `payload`.
    pub fn seal(&self, payload: &[u8]) -> Bytes {
        let tag = hmac_sha256_multi(&self.key, &[payload]);
        let mut out = Vec::with_capacity(32 + payload.len());
        out.extend_from_slice(tag.as_bytes());
        out.extend_from_slice(payload);
        Bytes::from(out)
    }

    /// Like [`seal`](Authenticator::seal), but takes the output buffer
    /// from `pool` so it recycles when the sealed message is dropped.
    pub fn seal_with(&self, payload: &[u8], pool: &BufferPool) -> Bytes {
        let tag = hmac_sha256_multi(&self.key, &[payload]);
        let mut out = pool.take(32 + payload.len());
        out.extend_from_slice(tag.as_bytes());
        out.extend_from_slice(payload);
        pool.wrap(out)
    }

    /// Verifies and strips the tag.
    ///
    /// # Errors
    ///
    /// Returns `None` if the message is too short or the tag does not
    /// verify.
    pub fn open(&self, sealed: &[u8]) -> Option<Bytes> {
        if sealed.len() < 32 {
            return None;
        }
        let (tag, payload) = sealed.split_at(32);
        let expected = hmac_sha256_multi(&self.key, &[payload]);
        // Constant-time-ish comparison: accumulate differences.
        let mut diff = 0u8;
        for (a, b) in tag.iter().zip(expected.as_bytes()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Some(Bytes::copy_from_slice(payload))
        } else {
            None
        }
    }

    /// Verifies the tag and returns the payload as a zero-copy view of
    /// `sealed` (no allocation on the receive path).
    ///
    /// # Errors
    ///
    /// Returns `None` if the message is too short or the tag does not
    /// verify.
    pub fn open_shared(&self, sealed: &Bytes) -> Option<Bytes> {
        if sealed.len() < 32 {
            return None;
        }
        let expected = hmac_sha256_multi(&self.key, &[&sealed[32..]]);
        let mut diff = 0u8;
        for (a, b) in sealed[..32].iter().zip(expected.as_bytes()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Some(sealed.slice(32..))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair() -> (Network, Endpoint, Endpoint) {
        let network = Network::new();
        let a = network.join(PeerId::replica(0));
        let b = network.join(PeerId::replica(1));
        (network, a, b)
    }

    #[test]
    fn pooled_send_buffers_recycle_through_the_hub() {
        let (network, a, b) = pair();
        let pool = a.pool();
        assert_eq!(network.pool().stats().recycled, 0);
        let mut buf = pool.take(64);
        buf.extend_from_slice(b"pooled payload");
        a.send(b.id(), pool.wrap(buf)).unwrap();
        let (_, received) = b.recv().unwrap();
        assert_eq!(received.as_ref(), b"pooled payload");
        drop(received);
        // The last view just dropped: the buffer is back on the free
        // list and the next take reuses it.
        assert_eq!(a.pool().stats().recycled, 1);
        let again = b.sender().pool().take(16);
        assert!(again.capacity() >= 64);
        assert_eq!(network.pool().stats().hits, 1);
    }

    #[test]
    fn seal_with_and_open_shared_roundtrip_without_copying() {
        let auth = Authenticator::for_link(b"secret", PeerId::replica(0), PeerId::replica(1));
        let pool = hlf_wire::BufferPool::default();
        let sealed = auth.seal_with(b"payload", &pool);
        assert_eq!(sealed.len(), 32 + 7);
        let opened = auth.open_shared(&sealed).unwrap();
        assert_eq!(opened.as_ref(), b"payload");
        assert!(opened.shares_storage_with(&sealed.slice(32..)));
        // Tampering still rejected.
        let mut bad = sealed.to_vec();
        bad[0] ^= 1;
        assert!(auth.open_shared(&Bytes::from(bad)).is_none());
        assert!(auth.open_shared(&Bytes::from_static(b"short")).is_none());
        // Both buffers dropped -> the seal buffer recycles.
        drop(sealed);
        drop(opened);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn send_and_receive() {
        let (_n, a, b) = pair();
        a.send(b.id(), Bytes::from_static(b"one")).unwrap();
        a.send(b.id(), Bytes::from_static(b"two")).unwrap();
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"one"));
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"two"));
        assert_eq!(a.stats().messages_sent(), 2);
        assert_eq!(b.stats().messages_received(), 2);
        assert_eq!(a.stats().bytes_sent(), 6);
    }

    #[test]
    fn unknown_peer_is_reported() {
        let (_n, a, _b) = pair();
        assert_eq!(
            a.send(PeerId::client(99), Bytes::new()),
            Err(TransportError::UnknownPeer(PeerId::client(99)))
        );
    }

    #[test]
    fn duplicate_join_panics() {
        let network = Network::new();
        let _a = network.join(PeerId::replica(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            network.join(PeerId::replica(0))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn timeout_and_try_recv() {
        let (_n, _a, b) = pair();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn blocked_link_is_one_directional() {
        let (network, a, b) = pair();
        network.block_link(a.id(), b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        // Reverse direction still works.
        b.send(a.id(), Bytes::from_static(b"y")).unwrap();
        assert_eq!(a.recv().unwrap().1, Bytes::from_static(b"y"));
        network.unblock_all();
        a.send(b.id(), Bytes::from_static(b"z")).unwrap();
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"z"));
    }

    #[test]
    fn isolation_and_heal() {
        let (network, a, b) = pair();
        network.isolate(b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        assert_eq!(
            b.send(a.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        network.heal(b.id());
        a.send(b.id(), Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn probabilistic_drops_are_deterministic() {
        let run = |seed: u64| {
            let (network, a, b) = pair();
            network.set_drop_probability(0.5, seed);
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(a.send(b.id(), Bytes::from_static(b"p")).is_ok());
            }
            outcomes
        };
        assert_eq!(run(11), run(11));
        let outcomes = run(11);
        let delivered = outcomes.iter().filter(|&&ok| ok).count();
        assert!(delivered > 10 && delivered < 54, "drop rate wildly off");
    }

    #[test]
    fn multicast_reaches_all_live_peers() {
        let network = Network::new();
        let sender = network.join(PeerId::replica(0));
        let receivers: Vec<Endpoint> =
            (1..4).map(|i| network.join(PeerId::replica(i))).collect();
        let targets: Vec<PeerId> = receivers.iter().map(|r| r.id()).collect();
        sender.multicast(&targets, &Bytes::from_static(b"block"));
        for r in &receivers {
            assert_eq!(r.recv().unwrap().1, Bytes::from_static(b"block"));
        }
    }

    #[test]
    fn part_simulates_process_exit() {
        let (network, a, b) = pair();
        network.part(b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::UnknownPeer(b.id()))
        );
        drop(b);
    }

    #[test]
    fn cross_thread_usage() {
        let (_n, a, b) = pair();
        let handle = thread::spawn(move || {
            for i in 0..100u32 {
                a.send(PeerId::replica(1), Bytes::from(i.to_le_bytes().to_vec()))
                    .unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            let (_, payload) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push(u32::from_le_bytes(payload[..4].try_into().unwrap()));
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn authenticator_roundtrip_and_tamper() {
        let auth_a = Authenticator::for_link(b"secret", PeerId::replica(0), PeerId::replica(1));
        let auth_b = Authenticator::for_link(b"secret", PeerId::replica(1), PeerId::replica(0));
        let sealed = auth_a.seal(b"propose");
        assert_eq!(auth_b.open(&sealed).unwrap(), Bytes::from_static(b"propose"));

        let mut tampered = sealed.to_vec();
        *tampered.last_mut().unwrap() ^= 1;
        assert!(auth_b.open(&tampered).is_none());
        assert!(auth_b.open(&sealed[..10]).is_none());

        // Different cluster secret cannot open.
        let rogue = Authenticator::for_link(b"other", PeerId::replica(0), PeerId::replica(1));
        assert!(rogue.open(&sealed).is_none());
    }

    #[test]
    fn sender_handle_sends_from_other_threads() {
        let (_n, a, b) = pair();
        let sender = a.sender();
        assert_eq!(sender.id(), a.id());
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let s = sender.clone();
                thread::spawn(move || {
                    s.send(PeerId::replica(1), Bytes::from(vec![i])).unwrap();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(b.recv_timeout(Duration::from_secs(5)).unwrap().1[0]);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Stats are shared with the originating endpoint.
        assert_eq!(a.stats().messages_sent(), 4);
    }

    #[test]
    fn sender_handle_respects_faults() {
        let (network, a, b) = pair();
        let sender = a.sender();
        network.block_link(a.id(), b.id());
        assert_eq!(
            sender.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
    }

    #[test]
    fn peer_id_display_and_kind() {
        assert_eq!(PeerId::replica(2).to_string(), "replica-2");
        assert_eq!(PeerId::client(3).to_string(), "client-3");
        assert!(PeerId::replica(0).is_replica());
        assert!(!PeerId::client(0).is_replica());
    }

    #[test]
    fn attached_flight_logs_received_frames() {
        let network = Network::new();
        let a = network.join(PeerId::replica(0));
        let mut b = network.join(PeerId::replica(1));
        let flight = Arc::new(FlightRecorder::new("replica-1"));
        b.attach_flight(Arc::clone(&flight));
        a.send(PeerId::replica(1), Bytes::from_static(b"hello")).unwrap();
        let (from, _) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, PeerId::replica(0));
        let events = flight.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Frame);
        assert_eq!(events[0].a, PeerId::replica(0).flight_code());
        assert_eq!(events[0].b, 5);
        // Clients land in a distinct code space.
        assert_ne!(
            PeerId::client(0).flight_code(),
            PeerId::replica(0).flight_code()
        );
    }
}
