//! Point-to-point transport for the ordering cluster, with two
//! interchangeable backends behind one authenticated [`Endpoint`] API:
//!
//! * [`hub`] — the in-process crossbeam hub used by tests, benchmarks
//!   and the deterministic simulations. Supports fault injection
//!   (blocked links, drops, isolation).
//! * [`tcp`] — real kernel TCP sockets for multi-process deployments
//!   (the paper's §6.2 LAN/WAN clusters run replicas as OS processes).
//!   Length-framed, HMAC-sealed, with per-peer send coalescing into
//!   `writev` and reconnect/re-key with exponential backoff.
//!
//! Protocol code (SMR nodes, clients, the ordering frontends) is
//! backend-agnostic: it receives an [`Endpoint`] and never learns
//! whether its bytes cross a channel or a socket. The *bytes* are
//! identical either way — the TCP backend frames exactly the payload
//! the in-process hub would deliver (see [`tcp`] module docs).
//!
//! # Examples
//!
//! ```
//! use hlf_transport::{Network, PeerId};
//! use std::time::Duration;
//!
//! let network = Network::new();
//! let a = network.join(PeerId::replica(0));
//! let b = network.join(PeerId::replica(1));
//! a.send(PeerId::replica(1), hlf_wire::Bytes::from_static(b"hello")).unwrap();
//! let (from, msg) = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(from, PeerId::replica(0));
//! assert_eq!(&msg[..], b"hello");
//! ```

pub mod admin;
pub mod hub;
pub mod tcp;

pub use admin::{AdminClient, AdminRequest, AdminServer, AdminSources, DeltaReply, HealthReport};
pub use hub::Network;
pub use tcp::{NetStats, TcpConfig, TcpNetwork};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use hlf_crypto::hmac::hmac_sha256_multi;
use hlf_obs::flight::EventKind;
use hlf_obs::FlightRecorder;
use hlf_wire::{BufferPool, Bytes};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identity of a transport participant.
///
/// The ordering service has two kinds of participants: cluster replicas
/// and frontends (SMR clients). Keeping them in one address space lets
/// the custom replier push blocks directly to frontends.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PeerId {
    /// An ordering node (BFT-SMaRt replica).
    Replica(u32),
    /// A frontend / client.
    Client(u32),
}

/// Bit set in [`PeerId::flight_code`] for client ids, keeping the two
/// id spaces disjoint in flight-recorder events.
const FLIGHT_CLIENT_BIT: u64 = 1 << 32;

impl PeerId {
    /// Shorthand constructor for a replica id.
    pub fn replica(id: u32) -> PeerId {
        PeerId::Replica(id)
    }

    /// Shorthand constructor for a client id.
    pub fn client(id: u32) -> PeerId {
        PeerId::Client(id)
    }

    /// Returns `true` for replica ids.
    pub fn is_replica(&self) -> bool {
        matches!(self, PeerId::Replica(_))
    }

    /// Compact form used in flight-recorder events: replicas map to
    /// their id, clients to `id | 1 << 32`.
    pub fn flight_code(&self) -> u64 {
        match self {
            PeerId::Replica(id) => *id as u64,
            PeerId::Client(id) => *id as u64 | FLIGHT_CLIENT_BIT,
        }
    }

    /// Inverse of [`PeerId::flight_code`]. Returns `None` for values no
    /// `flight_code` produces, so timeline tooling can reject corrupt
    /// events instead of misattributing them.
    pub fn from_flight_code(code: u64) -> Option<PeerId> {
        let id = u32::try_from(code & !FLIGHT_CLIENT_BIT).ok()?;
        if code & FLIGHT_CLIENT_BIT != 0 {
            Some(PeerId::Client(id))
        } else {
            Some(PeerId::Replica(id))
        }
    }

    /// Parses the textual form used by CLI flags and config files:
    /// `replica:3` or `client:1001` (also accepts the
    /// [`fmt::Display`] form `replica-3` / `client-1001`).
    pub fn parse(s: &str) -> Option<PeerId> {
        let (kind, id) = s
            .split_once(':')
            .or_else(|| s.split_once('-'))?;
        let id: u32 = id.parse().ok()?;
        match kind {
            "replica" => Some(PeerId::Replica(id)),
            "client" => Some(PeerId::Client(id)),
            _ => None,
        }
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerId::Replica(id) => write!(f, "replica-{id}"),
            PeerId::Client(id) => write!(f, "client-{id}"),
        }
    }
}

/// Transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Destination is not registered on the hub (or has no known
    /// address on the TCP backend).
    UnknownPeer(PeerId),
    /// Destination endpoint was dropped.
    Disconnected(PeerId),
    /// No message arrived before the timeout.
    Timeout,
    /// The hub dropped the message due to an injected fault. Callers
    /// usually treat this as success (the network "lost" the packet).
    Dropped,
    /// Message failed authentication.
    BadAuthenticator(PeerId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::Disconnected(p) => write!(f, "peer {p} disconnected"),
            TransportError::Timeout => f.write_str("receive timed out"),
            TransportError::Dropped => f.write_str("message dropped by fault injection"),
            TransportError::BadAuthenticator(p) => {
                write!(f, "bad message authenticator from {p}")
            }
        }
    }
}

impl Error for TransportError {}

/// Per-endpoint traffic counters.
#[derive(Debug, Default)]
pub struct TrafficStats {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
}

impl TrafficStats {
    /// Messages sent by this endpoint.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }
    /// Payload bytes sent by this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
    /// Messages received by this endpoint.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }
    /// Payload bytes received by this endpoint.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn note_sent(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Which backend carries an endpoint's traffic.
#[derive(Clone)]
enum Backend {
    /// In-process crossbeam hub.
    Hub(Arc<hub::Hub>),
    /// Kernel TCP sockets.
    Tcp(Arc<tcp::TcpCore>),
}

impl Backend {
    fn send(&self, from: PeerId, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        match self {
            Backend::Hub(hub) => hub.send(from, to, payload),
            Backend::Tcp(core) => core.send(to, payload),
        }
    }

    fn pool(&self) -> &BufferPool {
        match self {
            Backend::Hub(hub) => &hub.pool,
            Backend::Tcp(core) => core.pool(),
        }
    }

    /// Transport tag recorded in flight-recorder [`EventKind::Frame`]
    /// events (`c` bit 1): 0 = in-process, 1 = TCP.
    fn flight_transport_bit(&self) -> u64 {
        match self {
            Backend::Hub(_) => 0,
            Backend::Tcp(_) => frame_tag::TCP_BIT,
        }
    }
}

/// Bit layout of the `c` field in transport [`EventKind::Frame`]
/// events: bit 0 = direction (1 = received), bit 1 = backend
/// (1 = TCP socket, 0 = in-process hub). `hlf-audit` timeline
/// stitching keys on `(kind, a, b)` and ignores unknown `c` bits, so
/// both backends produce stitchable event streams.
pub mod frame_tag {
    /// Set on received frames (sends are currently not ring-recorded).
    pub const RECEIVED_BIT: u64 = 1;
    /// Set on frames that crossed a real TCP socket.
    pub const TCP_BIT: u64 = 2;
}

/// One participant's handle on the network: the single consumer of its
/// inbound message stream, plus the send side.
///
/// Built by [`Network::join`] (in-process) or
/// [`TcpNetwork::endpoint`] (sockets); protocol code treats both
/// identically.
pub struct Endpoint {
    id: PeerId,
    backend: Backend,
    incoming: Receiver<(PeerId, Bytes)>,
    stats: Arc<TrafficStats>,
    /// Optional flight recorder: every received frame is logged as an
    /// [`EventKind::Frame`] event so anomaly dumps show the message
    /// arrivals leading up to the anomaly. `None` costs nothing.
    flight: Option<Arc<FlightRecorder>>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.id)
    }
}

/// A cloneable, send-only handle derived from an [`Endpoint`].
///
/// Receiving stays single-consumer on the endpoint; senders can be
/// handed to worker threads (the ordering service's signing pool sends
/// finished blocks straight to frontends from its workers).
#[derive(Clone)]
pub struct SenderHandle {
    id: PeerId,
    backend: Backend,
    stats: Arc<TrafficStats>,
}

impl fmt::Debug for SenderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SenderHandle({})", self.id)
    }
}

impl SenderHandle {
    /// The originating endpoint's identity.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The backend-wide send-buffer pool (see [`Endpoint::pool`]).
    pub fn pool(&self) -> &BufferPool {
        self.backend.pool()
    }

    /// Sends `payload` to `to` (same semantics as [`Endpoint::send`]).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::send`].
    pub fn send(&self, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        let len = payload.len();
        self.backend.send(self.id, to, payload)?;
        self.stats.note_sent(len);
        Ok(())
    }
}

impl Endpoint {
    pub(crate) fn new(
        id: PeerId,
        backend: Backend,
        incoming: Receiver<(PeerId, Bytes)>,
    ) -> Endpoint {
        Endpoint {
            id,
            backend,
            incoming,
            stats: Arc::new(TrafficStats::default()),
            flight: None,
        }
    }

    /// This endpoint's identity.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The backend-wide send-buffer pool. Encode outgoing messages
    /// through it (e.g. [`hlf_wire::to_pooled_bytes`]) so their buffers
    /// recycle once delivered.
    pub fn pool(&self) -> &BufferPool {
        self.backend.pool()
    }

    /// A cloneable send-only handle for worker threads.
    pub fn sender(&self) -> SenderHandle {
        SenderHandle {
            id: self.id,
            backend: self.backend.clone(),
            stats: Arc::clone(&self.stats),
        }
    }

    /// Shared traffic counters (clone the `Arc` to watch from outside).
    pub fn stats(&self) -> Arc<TrafficStats> {
        Arc::clone(&self.stats)
    }

    /// Attaches a flight recorder; every subsequently received frame is
    /// logged as an [`EventKind::Frame`] event (`a` = sender's
    /// [`PeerId::flight_code`], `b` = payload bytes, `c` =
    /// [`frame_tag`] bits).
    pub fn attach_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Sends `payload` to `to`.
    ///
    /// On the in-process hub the message lands in `to`'s mailbox before
    /// the call returns. On TCP it is queued on the per-peer link and
    /// coalesced into the next `writev`; delivery is asynchronous and
    /// a dead peer surfaces as silence, not an error (the BFT layers
    /// tolerate loss).
    ///
    /// # Errors
    ///
    /// [`TransportError::UnknownPeer`] if the destination never joined
    /// (hub) or has no configured address (TCP),
    /// [`TransportError::Disconnected`] if its endpoint was dropped, and
    /// [`TransportError::Dropped`] if fault injection consumed the
    /// message.
    pub fn send(&self, to: PeerId, payload: Bytes) -> Result<(), TransportError> {
        let len = payload.len();
        self.backend.send(self.id, to, payload)?;
        self.stats.note_sent(len);
        Ok(())
    }

    /// Sends `payload` to every peer in `recipients`, ignoring
    /// individual delivery failures (the BFT layers tolerate loss).
    pub fn multicast(&self, recipients: &[PeerId], payload: &Bytes) {
        for &to in recipients {
            let _ = self.send(to, payload.clone());
        }
    }

    /// Receives the next message, blocking indefinitely.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if the hub is gone.
    pub fn recv(&self) -> Result<(PeerId, Bytes), TransportError> {
        let (from, payload) = self
            .incoming
            .recv()
            .map_err(|_| TransportError::Disconnected(self.id))?;
        self.note_received(from, &payload);
        Ok((from, payload))
    }

    /// Receives with a timeout.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrives in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(PeerId, Bytes), TransportError> {
        match self.incoming.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.note_received(from, &payload);
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected(self.id)),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(PeerId, Bytes)> {
        match self.incoming.try_recv() {
            Ok((from, payload)) => {
                self.note_received(from, &payload);
                Some((from, payload))
            }
            Err(_) => None,
        }
    }

    /// Number of queued messages.
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }

    fn note_received(&self, from: PeerId, payload: &Bytes) {
        self.stats.messages_received.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if let Some(flight) = &self.flight {
            flight.record_now(
                EventKind::Frame,
                from.flight_code(),
                payload.len() as u64,
                frame_tag::RECEIVED_BIT | self.backend.flight_transport_bit(),
            );
        }
    }
}

/// Pairwise HMAC session authentication, mirroring the authenticated
/// channels BFT-SMaRt establishes between replicas.
///
/// Both sides derive the same link key from their shared secret seeds;
/// [`seal`](Authenticator::seal) prepends a 32-byte tag that
/// [`open`](Authenticator::open) verifies. The TCP backend layers a
/// per-connection session key on top via
/// [`rekey`](Authenticator::rekey), so every reconnect re-keys the
/// link.
#[derive(Clone, Debug)]
pub struct Authenticator {
    key: [u8; 32],
}

impl Authenticator {
    /// Derives the symmetric link key for the unordered pair `{a, b}`
    /// from a cluster-wide secret.
    pub fn for_link(cluster_secret: &[u8], a: PeerId, b: PeerId) -> Authenticator {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let label = format!("link:{lo}:{hi}");
        let key = hmac_sha256_multi(cluster_secret, &[label.as_bytes()]);
        Authenticator {
            key: *key.as_bytes(),
        }
    }

    /// Derives a per-session authenticator from this link key and the
    /// two sides' connection nonces. A fresh connection exchanges fresh
    /// nonces, so a re-established link never reuses a session key.
    pub fn rekey(&self, initiator_nonce: &[u8], acceptor_nonce: &[u8]) -> Authenticator {
        let key = hmac_sha256_multi(
            &self.key,
            &[b"hlf-session", initiator_nonce, acceptor_nonce],
        );
        Authenticator {
            key: *key.as_bytes(),
        }
    }

    /// The 32-byte authentication tag for `payload` under this key.
    pub fn tag(&self, payload: &[u8]) -> [u8; 32] {
        *hmac_sha256_multi(&self.key, &[payload]).as_bytes()
    }

    /// A domain-separated tag over `parts` (handshake messages use
    /// distinct labels so a hello can never be replayed as an ack).
    pub fn tag_labeled(&self, label: &[u8], parts: &[&[u8]]) -> [u8; 32] {
        let mut all: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
        all.push(label);
        all.extend_from_slice(parts);
        *hmac_sha256_multi(&self.key, &all).as_bytes()
    }

    /// Prepends the authentication tag to `payload`.
    pub fn seal(&self, payload: &[u8]) -> Bytes {
        let tag = self.tag(payload);
        let mut out = Vec::with_capacity(32 + payload.len());
        out.extend_from_slice(&tag);
        out.extend_from_slice(payload);
        Bytes::from(out)
    }

    /// Like [`seal`](Authenticator::seal), but takes the output buffer
    /// from `pool` so it recycles when the sealed message is dropped.
    pub fn seal_with(&self, payload: &[u8], pool: &BufferPool) -> Bytes {
        let tag = self.tag(payload);
        let mut out = pool.take(32 + payload.len());
        out.extend_from_slice(&tag);
        out.extend_from_slice(payload);
        pool.wrap(out)
    }

    /// Verifies and strips the tag.
    ///
    /// # Errors
    ///
    /// Returns `None` if the message is too short or the tag does not
    /// verify.
    pub fn open(&self, sealed: &[u8]) -> Option<Bytes> {
        if sealed.len() < 32 {
            return None;
        }
        let (tag, payload) = sealed.split_at(32);
        let expected = self.tag(payload);
        if constant_time_eq(tag, &expected) {
            Some(Bytes::copy_from_slice(payload))
        } else {
            None
        }
    }

    /// Verifies the tag and returns the payload as a zero-copy view of
    /// `sealed` (no allocation on the receive path).
    ///
    /// # Errors
    ///
    /// Returns `None` if the message is too short or the tag does not
    /// verify.
    pub fn open_shared(&self, sealed: &Bytes) -> Option<Bytes> {
        if sealed.len() < 32 {
            return None;
        }
        let expected = self.tag(&sealed[32..]);
        if constant_time_eq(&sealed[..32], &expected) {
            Some(sealed.slice(32..))
        } else {
            None
        }
    }
}

/// Constant-time-ish tag comparison: accumulate differences.
pub(crate) fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair() -> (Network, Endpoint, Endpoint) {
        let network = Network::new();
        let a = network.join(PeerId::replica(0));
        let b = network.join(PeerId::replica(1));
        (network, a, b)
    }

    #[test]
    fn pooled_send_buffers_recycle_through_the_hub() {
        let (network, a, b) = pair();
        let pool = a.pool();
        assert_eq!(network.pool().stats().recycled, 0);
        let mut buf = pool.take(64);
        buf.extend_from_slice(b"pooled payload");
        a.send(b.id(), pool.wrap(buf)).unwrap();
        let (_, received) = b.recv().unwrap();
        assert_eq!(received.as_ref(), b"pooled payload");
        drop(received);
        // The last view just dropped: the buffer is back on the free
        // list and the next take reuses it.
        assert_eq!(a.pool().stats().recycled, 1);
        let again = b.sender().pool().take(16);
        assert!(again.capacity() >= 64);
        assert_eq!(network.pool().stats().hits, 1);
    }

    #[test]
    fn seal_with_and_open_shared_roundtrip_without_copying() {
        let auth = Authenticator::for_link(b"secret", PeerId::replica(0), PeerId::replica(1));
        let pool = hlf_wire::BufferPool::default();
        let sealed = auth.seal_with(b"payload", &pool);
        assert_eq!(sealed.len(), 32 + 7);
        let opened = auth.open_shared(&sealed).unwrap();
        assert_eq!(opened.as_ref(), b"payload");
        assert!(opened.shares_storage_with(&sealed.slice(32..)));
        // Tampering still rejected.
        let mut bad = sealed.to_vec();
        bad[0] ^= 1;
        assert!(auth.open_shared(&Bytes::from(bad)).is_none());
        assert!(auth.open_shared(&Bytes::from_static(b"short")).is_none());
        // Both buffers dropped -> the seal buffer recycles.
        drop(sealed);
        drop(opened);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn send_and_receive() {
        let (_n, a, b) = pair();
        a.send(b.id(), Bytes::from_static(b"one")).unwrap();
        a.send(b.id(), Bytes::from_static(b"two")).unwrap();
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"one"));
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"two"));
        assert_eq!(a.stats().messages_sent(), 2);
        assert_eq!(b.stats().messages_received(), 2);
        assert_eq!(a.stats().bytes_sent(), 6);
    }

    #[test]
    fn unknown_peer_is_reported() {
        let (_n, a, _b) = pair();
        assert_eq!(
            a.send(PeerId::client(99), Bytes::new()),
            Err(TransportError::UnknownPeer(PeerId::client(99)))
        );
    }

    #[test]
    fn duplicate_join_panics() {
        let network = Network::new();
        let _a = network.join(PeerId::replica(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            network.join(PeerId::replica(0))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn timeout_and_try_recv() {
        let (_n, _a, b) = pair();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(TransportError::Timeout)
        );
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn blocked_link_is_one_directional() {
        let (network, a, b) = pair();
        network.block_link(a.id(), b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        // Reverse direction still works.
        b.send(a.id(), Bytes::from_static(b"y")).unwrap();
        assert_eq!(a.recv().unwrap().1, Bytes::from_static(b"y"));
        network.unblock_all();
        a.send(b.id(), Bytes::from_static(b"z")).unwrap();
        assert_eq!(b.recv().unwrap().1, Bytes::from_static(b"z"));
    }

    #[test]
    fn isolation_and_heal() {
        let (network, a, b) = pair();
        network.isolate(b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        assert_eq!(
            b.send(a.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
        network.heal(b.id());
        a.send(b.id(), Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn probabilistic_drops_are_deterministic() {
        let run = |seed: u64| {
            let (network, a, b) = pair();
            network.set_drop_probability(0.5, seed);
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(a.send(b.id(), Bytes::from_static(b"p")).is_ok());
            }
            outcomes
        };
        assert_eq!(run(11), run(11));
        let outcomes = run(11);
        let delivered = outcomes.iter().filter(|&&ok| ok).count();
        assert!(delivered > 10 && delivered < 54, "drop rate wildly off");
    }

    #[test]
    fn multicast_reaches_all_live_peers() {
        let network = Network::new();
        let sender = network.join(PeerId::replica(0));
        let receivers: Vec<Endpoint> =
            (1..4).map(|i| network.join(PeerId::replica(i))).collect();
        let targets: Vec<PeerId> = receivers.iter().map(|r| r.id()).collect();
        sender.multicast(&targets, &Bytes::from_static(b"block"));
        for r in &receivers {
            assert_eq!(r.recv().unwrap().1, Bytes::from_static(b"block"));
        }
    }

    #[test]
    fn part_simulates_process_exit() {
        let (network, a, b) = pair();
        network.part(b.id());
        assert_eq!(
            a.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::UnknownPeer(b.id()))
        );
        drop(b);
    }

    #[test]
    fn cross_thread_usage() {
        let (_n, a, b) = pair();
        let handle = thread::spawn(move || {
            for i in 0..100u32 {
                a.send(PeerId::replica(1), Bytes::from(i.to_le_bytes().to_vec()))
                    .unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            let (_, payload) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push(u32::from_le_bytes(payload[..4].try_into().unwrap()));
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn authenticator_roundtrip_and_tamper() {
        let auth_a = Authenticator::for_link(b"secret", PeerId::replica(0), PeerId::replica(1));
        let auth_b = Authenticator::for_link(b"secret", PeerId::replica(1), PeerId::replica(0));
        let sealed = auth_a.seal(b"propose");
        assert_eq!(auth_b.open(&sealed).unwrap(), Bytes::from_static(b"propose"));

        let mut tampered = sealed.to_vec();
        *tampered.last_mut().unwrap() ^= 1;
        assert!(auth_b.open(&tampered).is_none());
        assert!(auth_b.open(&sealed[..10]).is_none());

        // Different cluster secret cannot open.
        let rogue = Authenticator::for_link(b"other", PeerId::replica(0), PeerId::replica(1));
        assert!(rogue.open(&sealed).is_none());
    }

    #[test]
    fn rekey_separates_sessions() {
        let link = Authenticator::for_link(b"secret", PeerId::replica(0), PeerId::replica(1));
        let s1 = link.rekey(b"nonce-a1", b"nonce-b1");
        let s2 = link.rekey(b"nonce-a2", b"nonce-b1");
        let sealed = s1.seal(b"frame");
        assert!(s1.open(&sealed).is_some());
        assert!(s2.open(&sealed).is_none(), "different nonces, different key");
        assert!(link.open(&sealed).is_none(), "link key does not open session frames");
        // Deterministic: same nonces derive the same session key.
        let s1_again = link.rekey(b"nonce-a1", b"nonce-b1");
        assert!(s1_again.open(&sealed).is_some());
    }

    #[test]
    fn sender_handle_sends_from_other_threads() {
        let (_n, a, b) = pair();
        let sender = a.sender();
        assert_eq!(sender.id(), a.id());
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let s = sender.clone();
                thread::spawn(move || {
                    s.send(PeerId::replica(1), Bytes::from(vec![i])).unwrap();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(b.recv_timeout(Duration::from_secs(5)).unwrap().1[0]);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Stats are shared with the originating endpoint.
        assert_eq!(a.stats().messages_sent(), 4);
    }

    #[test]
    fn sender_handle_respects_faults() {
        let (network, a, b) = pair();
        let sender = a.sender();
        network.block_link(a.id(), b.id());
        assert_eq!(
            sender.send(b.id(), Bytes::from_static(b"x")),
            Err(TransportError::Dropped)
        );
    }

    #[test]
    fn peer_id_display_and_kind() {
        assert_eq!(PeerId::replica(2).to_string(), "replica-2");
        assert_eq!(PeerId::client(3).to_string(), "client-3");
        assert!(PeerId::replica(0).is_replica());
        assert!(!PeerId::client(0).is_replica());
    }

    #[test]
    fn flight_code_roundtrips_for_both_kinds() {
        // The doc promises: replicas map to their id, clients to
        // `id | 1 << 32`. The inverse must recover the exact PeerId for
        // every id in either space, including the boundary values.
        for id in [0u32, 1, 7, u32::MAX - 1, u32::MAX] {
            for peer in [PeerId::Replica(id), PeerId::Client(id)] {
                let code = peer.flight_code();
                assert_eq!(PeerId::from_flight_code(code), Some(peer), "{peer}");
                match peer {
                    PeerId::Replica(_) => assert_eq!(code, id as u64),
                    PeerId::Client(_) => assert_eq!(code, id as u64 | (1 << 32)),
                }
            }
        }
        // Codes outside the two id spaces are rejected, not truncated.
        assert_eq!(PeerId::from_flight_code(1 << 33), None);
        assert_eq!(PeerId::from_flight_code(u64::MAX), None);
        // The two spaces stay disjoint.
        assert_ne!(
            PeerId::client(0).flight_code(),
            PeerId::replica(0).flight_code()
        );
    }

    #[test]
    fn peer_id_parse_accepts_cli_and_display_forms() {
        assert_eq!(PeerId::parse("replica:3"), Some(PeerId::Replica(3)));
        assert_eq!(PeerId::parse("client:1001"), Some(PeerId::Client(1001)));
        assert_eq!(PeerId::parse("replica-3"), Some(PeerId::Replica(3)));
        assert_eq!(PeerId::parse("orderer:1"), None);
        assert_eq!(PeerId::parse("replica:x"), None);
        assert_eq!(PeerId::parse("replica"), None);
    }

    #[test]
    fn attached_flight_logs_received_frames() {
        let network = Network::new();
        let a = network.join(PeerId::replica(0));
        let mut b = network.join(PeerId::replica(1));
        let flight = Arc::new(FlightRecorder::new("replica-1"));
        b.attach_flight(Arc::clone(&flight));
        a.send(PeerId::replica(1), Bytes::from_static(b"hello")).unwrap();
        let (from, _) = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, PeerId::replica(0));
        let events = flight.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Frame);
        assert_eq!(events[0].a, PeerId::replica(0).flight_code());
        assert_eq!(events[0].b, 5);
        // In-process backend: received bit set, TCP bit clear.
        assert_eq!(events[0].c, frame_tag::RECEIVED_BIT);
    }
}
