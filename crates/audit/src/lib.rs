//! Cluster-wide safety auditing for the BFT ordering service.
//!
//! Node-local observability (metrics, traces, per-node flight rings)
//! answers "what did *this* replica do?". This crate answers the
//! question the paper actually makes claims about: **did the cluster
//! stay safe?** It consumes the per-node
//! [`FlightRecorder`](hlf_obs::FlightRecorder) event streams every
//! replica already produces and provides three layers:
//!
//! - [`timeline`] — merges per-node rings into one causally-ordered
//!   cluster timeline, stitching a Lamport clock from the simulator's
//!   wire send/recv ([`hlf_obs::flight::EventKind::FrameSeq`]) events
//!   so message order survives virtual-timestamp ties.
//! - [`monitor`] — the online [`ClusterAuditor`]: agreement,
//!   certified-value preservation across view changes,
//!   tentative-rollback consistency, quorum-certificate validity
//!   (≥ 2f+1 distinct signers), and strictly monotonic decide release.
//!   Breaches become structured [`AuditViolation`]s carrying a slice of
//!   the recent merged timeline.
//! - [`dashboard`] — a live in-place text dashboard (`HLF_DASH=1`,
//!   1 Hz): per-replica regency / window occupancy / decide frontier /
//!   straggler suspicion, plus tx/s and p50/p99 sparklines over
//!   [`hlf_obs::TimeSeries`] rings.
//!
//! The simulator (`ordering_core::sim`) drives an auditor over every
//! geo/fault scenario; `audit_report` (crates/bench) proves seeded
//! equivocation and certified-value-drop injections are caught with
//! zero false positives on clean runs.

pub mod dashboard;
pub mod monitor;
pub mod timeline;

pub use dashboard::{dash_enabled, Dashboard};
pub use monitor::{AuditViolation, ClusterAuditor, ViolationKind};
pub use timeline::{reconstruct, CausalEvent};
