//! Live text cluster dashboard.
//!
//! Enabled with `HLF_DASH=1` (latched on first read, like `HLF_TRACE`),
//! the dashboard redraws in place once per second of *virtual* run time
//! and shows, per replica: the current regency, pipeline-window
//! occupancy, the decide frontier, and straggler suspicion — plus
//! cluster-wide tx/s and p50/p99 decide-latency sparklines backed by
//! [`hlf_obs::TimeSeries`] rings.
//!
//! The renderer is deterministic and side-effect free
//! ([`Dashboard::render`] returns a `String`); only
//! [`Dashboard::draw_to_stderr`] touches a terminal, using the
//! cursor-home + clear-to-end escape so successive frames overwrite
//! each other instead of scrolling.

use crate::monitor::ClusterAuditor;
use hlf_obs::flight::EventKind;
use hlf_obs::{FlightEvent, TimeSeries};
use std::sync::atomic::{AtomicU8, Ordering};

/// Sparkline window: last 30 one-second buckets.
const SPARK_WINDOW: usize = 30;

static DASH_ENABLED: AtomicU8 = AtomicU8::new(0);

/// `true` when `HLF_DASH` is set to something other than `0`/empty.
/// Latched on first call so the check is branch-predictable afterwards.
pub fn dash_enabled() -> bool {
    match DASH_ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("HLF_DASH")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            DASH_ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Per-second aggregation bucket.
#[derive(Default)]
struct Bucket {
    decided_txs: u64,
    latencies_us: Vec<u64>,
}

/// Rolling per-replica + cluster statistics for the dashboard.
pub struct Dashboard {
    n: usize,
    /// Last event seen per replica (µs), for straggler display.
    last_seen_us: Vec<u64>,
    /// Suspicion counts per replica (who is suspected, by anyone).
    suspected: Vec<u64>,
    bucket: Bucket,
    bucket_start_us: u64,
    tps: TimeSeries,
    p50_ms: TimeSeries,
    p99_ms: TimeSeries,
    now_us: u64,
}

impl Dashboard {
    /// Dashboard over an `n`-replica cluster.
    pub fn new(n: usize) -> Dashboard {
        Dashboard {
            n,
            last_seen_us: vec![0; n],
            suspected: vec![0; n],
            bucket: Bucket::default(),
            bucket_start_us: 0,
            tps: TimeSeries::with_capacity(SPARK_WINDOW),
            p50_ms: TimeSeries::with_capacity(SPARK_WINDOW),
            p99_ms: TimeSeries::with_capacity(SPARK_WINDOW),
            now_us: 0,
        }
    }

    /// Feeds one replica event (call alongside
    /// [`ClusterAuditor::observe`]).
    // lint:allow(panic): `node` and `peer` are bounds-checked before indexing
    pub fn observe(&mut self, node: usize, event: &FlightEvent) {
        if node >= self.n {
            return;
        }
        self.now_us = self.now_us.max(event.at_us);
        self.last_seen_us[node] = self.last_seen_us[node].max(event.at_us);
        self.roll_buckets(event.at_us);
        match event.kind {
            EventKind::Decide => {
                self.bucket.decided_txs += event.b;
                self.bucket.latencies_us.push(event.c);
            }
            EventKind::Suspect => {
                let peer = event.a as usize;
                if peer < self.n {
                    self.suspected[peer] += 1;
                }
            }
            _ => {}
        }
    }

    /// Closes every whole-second bucket up to `at_us` into the
    /// sparkline series.
    fn roll_buckets(&mut self, at_us: u64) {
        while at_us >= self.bucket_start_us + 1_000_000 {
            let bucket = std::mem::take(&mut self.bucket);
            self.tps.push(bucket.decided_txs as f64);
            let mut lat = bucket.latencies_us;
            lat.sort_unstable();
            if lat.is_empty() {
                self.p50_ms.push(0.0);
                self.p99_ms.push(0.0);
            } else {
                let pick = |q: f64| -> f64 {
                    let idx = ((lat.len() - 1) as f64 * q).round() as usize;
                    lat.get(idx).copied().unwrap_or(0) as f64 / 1000.0
                };
                self.p50_ms.push(pick(0.50));
                self.p99_ms.push(pick(0.99));
            }
            self.bucket_start_us += 1_000_000;
        }
    }

    /// Renders one frame from the auditor's per-replica view.
    // lint:allow(panic): `node` iterates 0..n, the length of both vecs
    pub fn render(&self, auditor: &ClusterAuditor) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "hlf cluster dashboard  t={:>7.1}s  violations={}\n",
            self.now_us as f64 / 1e6,
            auditor.violations().len()
        ));
        out.push_str("node  regency  window  frontier  suspicions  lag\n");
        for node in 0..self.n {
            let (regency, frontier, window) = auditor.node_view(node).unwrap_or((0, 0, 0));
            let lag_ms = self.now_us.saturating_sub(self.last_seen_us[node]) / 1000;
            let straggler = if self.suspected[node] > 0 { " ⚠" } else { "" };
            out.push_str(&format!(
                "{node:>4}  {regency:>7}  {window:>6}  {frontier:>8}  {:>10}  {lag_ms:>4}ms{straggler}\n",
                self.suspected[node]
            ));
        }
        out.push_str(&format!(
            "tx/s {:>8.0}  {}\n",
            self.tps.last().unwrap_or(0.0),
            self.tps.sparkline()
        ));
        out.push_str(&format!(
            "p50  {:>6.1}ms  {}\n",
            self.p50_ms.last().unwrap_or(0.0),
            self.p50_ms.sparkline()
        ));
        out.push_str(&format!(
            "p99  {:>6.1}ms  {}\n",
            self.p99_ms.last().unwrap_or(0.0),
            self.p99_ms.sparkline()
        ));
        out
    }

    /// Renders one *single-line* summary of the same frame, for
    /// plain-log consumers: cluster time, violation count, per-node
    /// `regency/window/frontier` triples, and the latest tx/s and
    /// latency figures. No ANSI escapes, no newlines.
    pub fn render_line(&self, auditor: &ClusterAuditor) -> String {
        let mut out = format!(
            "hlf-dash t={:.1}s violations={}",
            self.now_us as f64 / 1e6,
            auditor.violations().len()
        );
        for node in 0..self.n {
            let (regency, frontier, window) = auditor.node_view(node).unwrap_or((0, 0, 0));
            let straggler = if self.suspected.get(node).copied().unwrap_or(0) > 0 {
                "!"
            } else {
                ""
            };
            out.push_str(&format!(" n{node}=r{regency}/w{window}/f{frontier}{straggler}"));
        }
        out.push_str(&format!(
            " tx/s={:.0} p50={:.1}ms p99={:.1}ms",
            self.tps.last().unwrap_or(0.0),
            self.p50_ms.last().unwrap_or(0.0),
            self.p99_ms.last().unwrap_or(0.0)
        ));
        out
    }

    /// Draws a frame: on a terminal, cursor home + clear-to-end so
    /// frames overwrite in place; when stderr is piped (CI, `make`
    /// logs), one plain [`render_line`](Dashboard::render_line)
    /// summary per refresh instead, so `HLF_DASH=1` output stays
    /// readable in captured logs.
    pub fn draw_to_stderr(&self, auditor: &ClusterAuditor) {
        use std::io::IsTerminal;
        if std::io::stderr().is_terminal() {
            eprint!("\x1b[H\x1b[J{}", self.render(auditor));
        } else {
            eprintln!("{}", self.render_line(auditor));
        }
    }

    /// Virtual time of the newest event seen (µs).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: EventKind, a: u64, b: u64, c: u64) -> FlightEvent {
        FlightEvent { at_us, kind, a, b, c }
    }

    #[test]
    fn buckets_roll_into_sparklines() {
        let mut dash = Dashboard::new(4);
        // 3 seconds of decides with rising latency.
        for s in 0..3u64 {
            for i in 0..10u64 {
                dash.observe(
                    0,
                    &ev(s * 1_000_000 + i * 1000, EventKind::Decide, i, 5, (s + 1) * 10_000),
                );
            }
        }
        // A fourth-second event closes the third bucket.
        dash.observe(0, &ev(3_000_000, EventKind::Submit, 0, 0, 0));
        assert_eq!(dash.tps.len(), 3);
        assert_eq!(dash.tps.values(), vec![50.0, 50.0, 50.0]);
        assert_eq!(dash.p50_ms.values(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn render_shows_every_replica_and_suspicions() {
        let mut dash = Dashboard::new(4);
        let mut aud = ClusterAuditor::new(4, 1);
        dash.observe(0, &ev(1_500_000, EventKind::Decide, 0, 3, 9000));
        dash.observe(1, &ev(1_500_000, EventKind::Suspect, 3, 0, 0));
        let frame = dash.render(&aud);
        for node in 0..4 {
            assert!(frame.contains(&format!("\n{node:>4}  ")), "missing node {node}: {frame}");
        }
        assert!(frame.contains('⚠'), "straggler marker missing: {frame}");
        aud.observe(0, &ev(1, EventKind::DecideHash, 0, 0xab, 0b0011));
        assert!(dash.render(&aud).contains("violations=1"));
    }

    #[test]
    fn render_line_is_single_plain_line() {
        let mut dash = Dashboard::new(4);
        let aud = ClusterAuditor::new(4, 1);
        dash.observe(0, &ev(2_500_000, EventKind::Decide, 0, 3, 9000));
        dash.observe(1, &ev(2_500_000, EventKind::Suspect, 3, 0, 0));
        let line = dash.render_line(&aud);
        assert!(!line.contains('\n'), "multi-line: {line}");
        assert!(!line.contains('\x1b'), "ANSI escape in plain line: {line}");
        assert!(line.starts_with("hlf-dash t=2.5s violations=0"), "{line}");
        for node in 0..4 {
            assert!(line.contains(&format!(" n{node}=r")), "missing node {node}: {line}");
        }
        assert!(line.contains("n3=r0/w0/f0!"), "straggler mark missing: {line}");
        assert!(line.contains("tx/s="), "{line}");
    }

    #[test]
    fn empty_dashboard_renders_without_panicking() {
        let dash = Dashboard::new(4);
        let aud = ClusterAuditor::new(4, 1);
        let frame = dash.render(&aud);
        assert!(frame.contains("tx/s"));
    }
}
