//! Online Byzantine-safety invariant monitor.
//!
//! The [`ClusterAuditor`] consumes the flight-event streams of every
//! replica (drained incrementally via
//! [`hlf_obs::FlightRecorder::events_since`]) and checks the paper's
//! safety claims *while the run executes*:
//!
//! 1. **Agreement** — no two replicas decide different values for one
//!    consensus instance ([`ViolationKind::Equivocation`]).
//! 2. **Certified-value preservation** — once a value gathers a WRITE
//!    certificate for a slot, no different value may be certified or
//!    decided for that slot, across any number of view changes
//!    ([`ViolationKind::CertifiedValueDropped`]).
//! 3. **Tentative-rollback consistency** — a tentative delivery is only
//!    ever rolled back as part of a regency change's window re-bind
//!    ([`ViolationKind::RollbackWithoutViewChange`]).
//! 4. **Quorum-certificate validity** — every decide and WRITE
//!    certificate carries ≥ 2f+1 *distinct* in-range signers
//!    ([`ViolationKind::BadQuorumCertificate`]).
//! 5. **Monotonic release** — each replica's decide stream never goes
//!    backwards in consensus id
//!    ([`ViolationKind::NonMonotonicRelease`]).
//!
//! Violations carry a slice of the recent merged timeline so a report
//! shows *how* the cluster got to the bad state, not just that it did.

use hlf_obs::flight::EventKind;
use hlf_obs::FlightEvent;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// How much merged-timeline history a violation report carries.
const SLICE_EVENTS: usize = 48;

/// Which safety invariant was breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two replicas decided different values for the same instance.
    Equivocation,
    /// A certified value was replaced by a different value for the same
    /// slot (certificate dropped across a view change).
    CertifiedValueDropped,
    /// A tentative delivery was rolled back outside any regency change.
    RollbackWithoutViewChange,
    /// A decide or WRITE certificate lacks 2f+1 distinct valid signers.
    BadQuorumCertificate,
    /// A replica released decides out of consensus-id order.
    NonMonotonicRelease,
}

impl ViolationKind {
    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Equivocation => "equivocation",
            ViolationKind::CertifiedValueDropped => "certified_value_dropped",
            ViolationKind::RollbackWithoutViewChange => "rollback_without_view_change",
            ViolationKind::BadQuorumCertificate => "bad_quorum_certificate",
            ViolationKind::NonMonotonicRelease => "non_monotonic_release",
        }
    }
}

/// A breached invariant, with enough context to debug it: the offending
/// instance and replica, a human-readable account, and the tail of the
/// merged cluster timeline leading up to the breach.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    pub kind: ViolationKind,
    /// Consensus instance the breach concerns (0 when not applicable).
    pub cid: u64,
    /// Replica whose event triggered the check.
    pub node: usize,
    /// Virtual time of the triggering event (µs).
    pub at_us: u64,
    pub detail: String,
    /// Recent merged timeline: `(node, event)` pairs, oldest first.
    pub slice: Vec<(usize, FlightEvent)>,
}

impl AuditViolation {
    /// One-line human-readable report.
    pub fn to_line(&self) -> String {
        format!(
            "[{}] cid {} node {} at {}us: {}",
            self.kind.name(),
            self.cid,
            self.node,
            self.at_us,
            self.detail
        )
    }
}

/// Per-replica state the auditor tracks.
#[derive(Debug, Default, Clone)]
struct NodeState {
    /// Highest regency this node is known to have installed.
    regency: u64,
    /// `true` between a regency change and the next decide: rollbacks
    /// are legitimate only inside this span (the window re-bind).
    in_viewchange: bool,
    /// Last decided cid, for the monotonic-release check.
    last_decided: Option<u64>,
    /// Decide frontier (next expected cid), for dashboards.
    frontier: u64,
    /// Live (proposed, undecided) slots this node currently tracks.
    live_slots: BTreeMap<u64, u64>,
}

/// What the cluster agreed on for one consensus instance so far.
#[derive(Debug, Default, Clone)]
struct SlotState {
    /// First decided digest and the replica that reported it.
    decided: Option<(u64, usize)>,
    /// Certified digests seen (digest64 → first reporting replica).
    /// More than one entry is already a safety breach.
    certified: BTreeMap<u64, usize>,
}

/// Online safety auditor over per-replica flight-event streams.
///
/// Feed each replica's events in its local ring order via
/// [`ClusterAuditor::observe`]; interleaving across replicas may be
/// arbitrary (the checks are order-insensitive across nodes, and the
/// per-node state machines only need local order).
pub struct ClusterAuditor {
    n: usize,
    f: usize,
    nodes: Vec<NodeState>,
    slots: BTreeMap<u64, SlotState>,
    violations: Vec<AuditViolation>,
    /// Ring of recent events for violation slices.
    recent: VecDeque<(usize, FlightEvent)>,
    /// Total events observed.
    observed: u64,
}

impl ClusterAuditor {
    /// Auditor for an `n`-replica cluster tolerating `f` faults.
    pub fn new(n: usize, f: usize) -> ClusterAuditor {
        ClusterAuditor {
            n,
            f,
            nodes: vec![NodeState::default(); n],
            slots: BTreeMap::new(),
            violations: Vec::new(),
            recent: VecDeque::with_capacity(SLICE_EVENTS),
            observed: 0,
        }
    }

    /// Minimum distinct signers a valid certificate needs (2f+1).
    pub fn min_signers(&self) -> u32 {
        2 * self.f as u32 + 1
    }

    /// Feeds one event from replica `node`'s stream.
    // lint:allow(panic): `node` is bounds-checked on entry
    pub fn observe(&mut self, node: usize, event: &FlightEvent) {
        if node >= self.nodes.len() {
            return;
        }
        self.observed += 1;
        self.recent.push_back((node, event.clone()));
        while self.recent.len() > SLICE_EVENTS {
            self.recent.pop_front();
        }
        match event.kind {
            EventKind::Propose => {
                self.nodes[node].live_slots.insert(event.a, event.b);
            }
            EventKind::RegencyChange => {
                self.nodes[node].regency = event.a;
                self.nodes[node].in_viewchange = true;
            }
            EventKind::Rebind => {
                // Re-binds only happen inside a sync; treat them as
                // (re)entering the re-bind span as well, in case the
                // regency-change event was lost to ring overwrite.
                self.nodes[node].in_viewchange = true;
            }
            EventKind::Rollback => self.check_rollback(node, event),
            EventKind::WriteCert => self.check_write_cert(node, event),
            EventKind::DecideHash => self.check_decide(node, event),
            _ => {}
        }
    }

    // lint:allow(panic): only called from observe, which bounds-checks `node`
    fn check_rollback(&mut self, node: usize, event: &FlightEvent) {
        if !self.nodes[node].in_viewchange {
            self.push_violation(
                ViolationKind::RollbackWithoutViewChange,
                event.a,
                node,
                event.at_us,
                format!(
                    "tentative delivery for cid {} rolled back with no preceding regency change",
                    event.a
                ),
            );
        }
    }

    fn check_write_cert(&mut self, node: usize, event: &FlightEvent) {
        let (cid, digest, signers) = (event.a, event.b, event.c);
        self.check_signers(node, cid, signers, event.at_us, "WRITE certificate");
        let slot = self.slots.entry(cid).or_default();
        let prior: Vec<(u64, usize)> = slot
            .certified
            .iter()
            .map(|(&d, &by)| (d, by))
            .filter(|&(d, _)| d != digest)
            .collect();
        slot.certified.entry(digest).or_insert(node);
        if let Some(&(prev_digest, prev_node)) = prior.first() {
            self.push_violation(
                ViolationKind::CertifiedValueDropped,
                cid,
                node,
                event.at_us,
                format!(
                    "cid {cid}: node {node} certified {digest:#018x} but node {prev_node} \
                     had certified {prev_digest:#018x}"
                ),
            );
        }
    }

    // lint:allow(panic): `node` bounds-checked in observe; the slot entry is created above each map index
    fn check_decide(&mut self, node: usize, event: &FlightEvent) {
        let (cid, digest, signers) = (event.a, event.b, event.c);
        self.check_signers(node, cid, signers, event.at_us, "decision proof");

        // Agreement across replicas.
        let decided = self.slots.entry(cid).or_default().decided;
        match decided {
            None => {
                self.slots.entry(cid).or_default().decided = Some((digest, node));
            }
            Some((prev, prev_node)) if prev != digest => {
                self.push_violation(
                    ViolationKind::Equivocation,
                    cid,
                    node,
                    event.at_us,
                    format!(
                        "cid {cid}: node {node} decided {digest:#018x} but node {prev_node} \
                         decided {prev:#018x}"
                    ),
                );
            }
            Some(_) => {}
        }

        // Certified-value preservation: a decide must match a certified
        // value whenever certificates were observed for the slot.
        let cert_mismatch = {
            let slot = self.slots.entry(cid).or_default();
            !slot.certified.is_empty() && !slot.certified.contains_key(&digest)
        };
        if cert_mismatch {
            let certified: Vec<String> = self.slots[&cid]
                .certified
                .keys()
                .map(|d| format!("{d:#018x}"))
                .collect();
            self.push_violation(
                ViolationKind::CertifiedValueDropped,
                cid,
                node,
                event.at_us,
                format!(
                    "cid {cid}: node {node} decided {digest:#018x}, not among certified \
                     values [{}]",
                    certified.join(", ")
                ),
            );
        }

        // In-order release per replica. A repeated decide of the same
        // cid is tolerated here: it is an idempotent redelivery if the
        // digests match, and an equivocation (flagged above) if not.
        if let Some(last) = self.nodes[node].last_decided {
            if cid < last {
                self.push_violation(
                    ViolationKind::NonMonotonicRelease,
                    cid,
                    node,
                    event.at_us,
                    format!("node {node} decided cid {cid} after already deciding cid {last}"),
                );
            }
        }
        let state = &mut self.nodes[node];
        state.last_decided = Some(cid.max(state.last_decided.unwrap_or(0)));
        state.frontier = state.frontier.max(cid + 1);
        state.live_slots.remove(&cid);
        state.in_viewchange = false;
    }

    fn check_signers(&mut self, node: usize, cid: u64, signers: u64, at_us: u64, what: &str) {
        let distinct = signers.count_ones();
        let out_of_range = self.n < 64 && (signers >> self.n) != 0;
        if distinct < self.min_signers() || out_of_range {
            self.push_violation(
                ViolationKind::BadQuorumCertificate,
                cid,
                node,
                at_us,
                format!(
                    "cid {cid}: {what} on node {node} has {distinct} distinct signers \
                     (bitmap {signers:#x}), need {} of nodes 0..{}",
                    self.min_signers(),
                    self.n
                ),
            );
        }
    }

    fn push_violation(
        &mut self,
        kind: ViolationKind,
        cid: u64,
        node: usize,
        at_us: u64,
        detail: String,
    ) {
        self.violations.push(AuditViolation {
            kind,
            cid,
            node,
            at_us,
            detail,
            slice: self.recent.iter().cloned().collect(),
        });
    }

    /// Violations found so far, in detection order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Total events fed through the auditor.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Per-replica view for dashboards: `(regency, frontier, live
    /// in-window slots)`.
    pub fn node_view(&self, node: usize) -> Option<(u64, u64, usize)> {
        self.nodes
            .get(node)
            .map(|s| (s.regency, s.frontier, s.live_slots.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: EventKind, a: u64, b: u64, c: u64) -> FlightEvent {
        FlightEvent { at_us, kind, a, b, c }
    }

    /// 2f+1 = 3 signers for n=4, f=1: nodes 0, 1, 2.
    const GOOD_SIGNERS: u64 = 0b0111;

    fn clean_decide(aud: &mut ClusterAuditor, cid: u64, digest: u64) {
        for node in 0..4 {
            aud.observe(node, &ev(cid * 10, EventKind::WriteCert, cid, digest, GOOD_SIGNERS));
            aud.observe(node, &ev(cid * 10 + 1, EventKind::DecideHash, cid, digest, GOOD_SIGNERS));
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut aud = ClusterAuditor::new(4, 1);
        for cid in 0..50 {
            clean_decide(&mut aud, cid, 0x1000 + cid);
        }
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
        assert_eq!(aud.node_view(0), Some((0, 50, 0)));
    }

    #[test]
    fn equivocating_decide_is_caught_and_named() {
        let mut aud = ClusterAuditor::new(4, 1);
        clean_decide(&mut aud, 0, 0xaaaa);
        aud.observe(2, &ev(99, EventKind::DecideHash, 1, 0xbbbb, GOOD_SIGNERS));
        aud.observe(3, &ev(100, EventKind::DecideHash, 1, 0xcccc, GOOD_SIGNERS));
        let v: Vec<_> = aud
            .violations()
            .iter()
            .filter(|v| v.kind == ViolationKind::Equivocation)
            .collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].cid, 1);
        assert_eq!(v[0].node, 3);
        assert!(v[0].detail.contains("node 2"), "{}", v[0].detail);
        assert!(!v[0].slice.is_empty(), "violation must carry a timeline slice");
    }

    #[test]
    fn conflicting_write_cert_is_a_dropped_certified_value() {
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(0, &ev(10, EventKind::WriteCert, 5, 0x1111, GOOD_SIGNERS));
        aud.observe(1, &ev(11, EventKind::WriteCert, 5, 0x2222, GOOD_SIGNERS));
        let v = &aud.violations()[0];
        assert_eq!(v.kind, ViolationKind::CertifiedValueDropped);
        assert_eq!(v.cid, 5);
        assert_eq!(v.node, 1);
    }

    #[test]
    fn decide_outside_certified_set_is_a_dropped_certified_value() {
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(0, &ev(10, EventKind::WriteCert, 5, 0x1111, GOOD_SIGNERS));
        aud.observe(0, &ev(12, EventKind::DecideHash, 5, 0x9999, GOOD_SIGNERS));
        assert!(aud
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::CertifiedValueDropped && v.cid == 5));
    }

    #[test]
    fn rollback_requires_a_view_change() {
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(1, &ev(10, EventKind::TentativeHash, 3, 0x1, 0));
        aud.observe(1, &ev(11, EventKind::Rollback, 3, 0, 0));
        assert_eq!(
            aud.violations()[0].kind,
            ViolationKind::RollbackWithoutViewChange
        );

        // With the regency change first, the same rollback is fine.
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(1, &ev(9, EventKind::RegencyChange, 1, 1, 0));
        aud.observe(1, &ev(10, EventKind::Rebind, 3, 0x2, 1));
        aud.observe(1, &ev(11, EventKind::Rollback, 3, 0, 0));
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
    }

    #[test]
    fn decide_closes_the_viewchange_span() {
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(1, &ev(9, EventKind::RegencyChange, 1, 1, 0));
        aud.observe(1, &ev(10, EventKind::DecideHash, 3, 0x2, GOOD_SIGNERS));
        aud.observe(1, &ev(11, EventKind::Rollback, 4, 0, 0));
        assert_eq!(
            aud.violations()[0].kind,
            ViolationKind::RollbackWithoutViewChange
        );
    }

    #[test]
    fn thin_or_out_of_range_quorums_are_rejected() {
        let mut aud = ClusterAuditor::new(4, 1);
        // Two distinct signers < 2f+1 = 3.
        aud.observe(0, &ev(10, EventKind::DecideHash, 1, 0xab, 0b0011));
        // Bit 5 set but n = 4.
        aud.observe(0, &ev(11, EventKind::WriteCert, 2, 0xcd, 0b100111));
        let kinds: Vec<ViolationKind> = aud.violations().iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::BadQuorumCertificate,
                ViolationKind::BadQuorumCertificate
            ]
        );
    }

    #[test]
    fn out_of_order_release_is_caught() {
        let mut aud = ClusterAuditor::new(4, 1);
        aud.observe(0, &ev(10, EventKind::DecideHash, 2, 0xab, GOOD_SIGNERS));
        aud.observe(0, &ev(11, EventKind::DecideHash, 1, 0xcd, GOOD_SIGNERS));
        assert!(aud
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::NonMonotonicRelease && v.node == 0 && v.cid == 1));
    }

    #[test]
    fn repeated_certs_for_the_same_value_are_fine() {
        // Every replica certifies the same digest, then a view change
        // re-certifies it under a new regency — still one value.
        let mut aud = ClusterAuditor::new(4, 1);
        for node in 0..4 {
            aud.observe(node, &ev(10, EventKind::WriteCert, 7, 0xfeed, GOOD_SIGNERS));
        }
        for node in 0..4 {
            aud.observe(node, &ev(20, EventKind::RegencyChange, 1, 1, 0));
            aud.observe(node, &ev(21, EventKind::Rebind, 7, 0xfeed, 1));
            aud.observe(node, &ev(22, EventKind::WriteCert, 7, 0xfeed, 0b1110));
            aud.observe(node, &ev(23, EventKind::DecideHash, 7, 0xfeed, 0b1110));
        }
        assert!(aud.violations().is_empty(), "{:?}", aud.violations());
    }
}
