//! Causal cluster-timeline reconstruction.
//!
//! Every node's flight-recorder ring is a *local* history. To reason
//! about the cluster ("did replica 2 decide before replica 0 re-bound
//! the slot?") those histories must be merged into one causally-ordered
//! sequence. Virtual sim time is globally comparable, but equal
//! timestamps are common (a broadcast arrives everywhere in the same
//! tick) — so the merge additionally stitches a Lamport-style logical
//! clock from the [`EventKind::FrameSeq`] send/recv pairs the simulator
//! records on every wire message: a receive is ordered after its send
//! no matter how the physical timestamps tie.

use hlf_obs::flight::EventKind;
use hlf_obs::FlightEvent;
use std::collections::HashMap;

/// One event of the merged cluster timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalEvent {
    /// Index of the node the event happened on (replicas first, then
    /// frontends, in the order they were fed to [`reconstruct`]).
    pub node: usize,
    /// Lamport clock: `e1.lamport < e2.lamport` whenever `e1`
    /// happens-before `e2` through a chain of local steps and matched
    /// send/recv pairs.
    pub lamport: u64,
    pub event: FlightEvent,
}

/// Merges per-node event streams (each stream already in its local
/// recording order) into one causally-consistent timeline.
///
/// Ordering: events are first interleaved by `(at_us, node, local
/// position)` — valid because the sim's virtual clock is global — then
/// Lamport clocks are assigned in one pass: a local step increments the
/// node clock, a [`EventKind::FrameSeq`] receive additionally joins the
/// matching send's clock. The final timeline sorts by `(lamport, at_us,
/// node)`, so causal order wins over timestamp ties.
// lint:allow(panic): every (node, pos) pair is enumerated from `streams` itself
pub fn reconstruct(streams: &[Vec<FlightEvent>]) -> Vec<CausalEvent> {
    // Interleave by global virtual time, breaking ties by node then by
    // local ring order (the stream index is the local order).
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (node, events) in streams.iter().enumerate() {
        for pos in 0..events.len() {
            order.push((node, pos));
        }
    }
    order.sort_by_key(|&(node, pos)| (streams[node][pos].at_us, node, pos));

    // One pass assigning Lamport clocks, joining matched FrameSeq pairs
    // on the sender-unique message id in `b`.
    let mut clocks: Vec<u64> = vec![0; streams.len()];
    let mut sends: HashMap<u64, u64> = HashMap::new();
    let mut timeline = Vec::with_capacity(order.len());
    for (node, pos) in order {
        let event = streams[node][pos].clone();
        let mut next = clocks[node] + 1;
        if event.kind == EventKind::FrameSeq {
            if event.c == 0 {
                sends.insert(event.b, next);
            } else if let Some(&sent) = sends.get(&event.b) {
                next = next.max(sent + 1);
            }
        }
        clocks[node] = next;
        timeline.push(CausalEvent {
            node,
            lamport: next,
            event,
        });
    }
    timeline.sort_by(|x, y| {
        (x.lamport, x.event.at_us, x.node).cmp(&(y.lamport, y.event.at_us, y.node))
    });
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: EventKind, a: u64, b: u64, c: u64) -> FlightEvent {
        FlightEvent { at_us, kind, a, b, c }
    }

    #[test]
    fn recv_is_ordered_after_its_send_despite_timestamp_tie() {
        // Node 0 sends message 7 at t=10; node 1 receives it also at
        // t=10 (zero-latency link) and then decides. Timestamp order is
        // ambiguous; Lamport order must put send < recv < decide.
        let streams = vec![
            vec![ev(10, EventKind::FrameSeq, 1, 7, 0)],
            vec![
                ev(10, EventKind::FrameSeq, 0, 7, 1),
                ev(10, EventKind::Decide, 3, 1, 0),
            ],
        ];
        let timeline = reconstruct(&streams);
        let pos = |node: usize, kind: EventKind| {
            timeline
                .iter()
                .position(|e| e.node == node && e.event.kind == kind)
                .unwrap()
        };
        let send = pos(0, EventKind::FrameSeq);
        let recv = pos(1, EventKind::FrameSeq);
        let decide = pos(1, EventKind::Decide);
        assert!(send < recv, "send must precede its receive");
        assert!(recv < decide, "local order preserved");
        assert!(timeline[send].lamport < timeline[recv].lamport);
    }

    #[test]
    fn local_order_is_preserved() {
        let streams = vec![vec![
            ev(5, EventKind::Propose, 1, 0, 0),
            ev(5, EventKind::WriteQuorum, 1, 3, 0),
            ev(6, EventKind::Decide, 1, 1, 0),
        ]];
        let timeline = reconstruct(&streams);
        let kinds: Vec<EventKind> = timeline.iter().map(|e| e.event.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Propose, EventKind::WriteQuorum, EventKind::Decide]
        );
        let clocks: Vec<u64> = timeline.iter().map(|e| e.lamport).collect();
        assert_eq!(clocks, vec![1, 2, 3]);
    }

    #[test]
    fn transitive_chain_across_three_nodes() {
        // 0 sends m1 → 1 receives, sends m2 → 2 receives. The chain
        // must be monotone in Lamport time even with identical
        // timestamps everywhere.
        let streams = vec![
            vec![ev(1, EventKind::FrameSeq, 1, 100, 0)],
            vec![
                ev(1, EventKind::FrameSeq, 0, 100, 1),
                ev(1, EventKind::FrameSeq, 2, 200, 0),
            ],
            vec![ev(1, EventKind::FrameSeq, 1, 200, 1)],
        ];
        let timeline = reconstruct(&streams);
        let clock = |node: usize, b: u64, c: u64| {
            timeline
                .iter()
                .find(|e| e.node == node && e.event.b == b && e.event.c == c)
                .unwrap()
                .lamport
        };
        assert!(clock(0, 100, 0) < clock(1, 100, 1));
        assert!(clock(1, 100, 1) < clock(1, 200, 0));
        assert!(clock(1, 200, 0) < clock(2, 200, 1));
    }
}
