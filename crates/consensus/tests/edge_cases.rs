//! Edge-case integration tests for the consensus replica: buffering
//! across synchronization phases, state installation, value transfer
//! limits, and proposal validation.

use hlf_wire::Bytes;
use hlf_consensus::messages::{Batch, ConsensusMsg, Request, Vote, VotePhase};
use hlf_consensus::quorum::QuorumSystem;
use hlf_consensus::replica::{Action, Config, Replica};
use hlf_consensus::testing::{test_keys, Cluster, Observed};
use hlf_crypto::ecdsa::SigningKey;
use hlf_wire::{ClientId, NodeId};

fn req(seq: u64) -> Request {
    Request::new(ClientId(4), seq, Bytes::from(vec![seq as u8; 16]))
}

fn cluster_keys(n: usize) -> Vec<SigningKey> {
    (0..n)
        .map(|i| SigningKey::from_seed(format!("cluster-key-{i}").as_bytes()))
        .collect()
}

/// Builds a standalone replica wired with the same deterministic keys
/// the Cluster harness uses (so injected votes validate).
fn standalone(n: usize, f: usize, index: usize) -> Replica {
    let (signing, verifying) = test_keys(n);
    Replica::new(Config::new(
        NodeId(index as u32),
        QuorumSystem::classic(n, f).unwrap(),
        verifying,
        signing[index].clone(),
    ))
}

#[test]
fn duplicate_proposals_are_idempotent() {
    let mut replica = standalone(4, 1, 1);
    let batch = Batch::new(vec![req(1)]);
    let propose = ConsensusMsg::Propose {
        cid: 1,
        epoch: 0,
        batch: batch.clone(),
    };
    let first = replica.on_message(0, NodeId(0), propose.clone());
    assert!(first
        .iter()
        .any(|a| matches!(a, Action::Broadcast(ConsensusMsg::Write(_)))));
    // A replayed identical proposal must not produce a second write.
    let second = replica.on_message(0, NodeId(0), propose);
    assert!(second.is_empty());
}

#[test]
fn conflicting_second_proposal_ignored() {
    let mut replica = standalone(4, 1, 1);
    let batch_a = Batch::new(vec![req(1)]);
    let batch_b = Batch::new(vec![req(2)]);
    replica.on_message(
        0,
        NodeId(0),
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: batch_a,
        },
    );
    let actions = replica.on_message(
        0,
        NodeId(0),
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: batch_b,
        },
    );
    assert!(actions.is_empty(), "equivocating second proposal accepted");
}

#[test]
fn oversized_batch_rejected() {
    let mut replica = standalone(4, 1, 1);
    let too_many = Batch::new((0..500).map(req).collect());
    let actions = replica.on_message(
        0,
        NodeId(0),
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: too_many,
        },
    );
    assert!(actions.is_empty());
}

#[test]
fn empty_normal_proposal_rejected() {
    let mut replica = standalone(4, 1, 1);
    let actions = replica.on_message(
        0,
        NodeId(0),
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: Batch::empty(),
        },
    );
    assert!(actions.is_empty());
}

#[test]
fn proposal_from_non_leader_rejected() {
    let mut replica = standalone(4, 1, 2);
    let actions = replica.on_message(
        0,
        NodeId(1), // leader of regency 0 is node 0
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: Batch::new(vec![req(1)]),
        },
    );
    assert!(actions.is_empty());
}

#[test]
fn install_state_skips_ahead_and_ignores_regressions() {
    let mut replica = standalone(4, 1, 1);
    assert_eq!(replica.next_cid(), 1);
    replica.install_state(0, 10);
    assert_eq!(replica.next_cid(), 11);
    // Installing an older state is a no-op.
    replica.install_state(0, 5);
    assert_eq!(replica.next_cid(), 11);
}

#[test]
fn value_requests_for_ancient_cids_get_no_reply() {
    // Replica 0 decides many instances; its reply cache is bounded, so
    // a request for instance 1 after hundreds of decisions is silent
    // (state transfer, not value transfer, covers that gap).
    let mut cluster = Cluster::classic(4, 1);
    for seq in 1..=80 {
        cluster.submit_to_all(req(seq));
        cluster.run_to_quiescence();
    }
    assert_eq!(cluster.decisions(0).len(), 80);
    // 64-entry cache: cid 1 is long gone; cid 80 is present.
    cluster.inject(0, NodeId(3), ConsensusMsg::ValueRequest { cid: 1 });
    cluster.inject(0, NodeId(3), ConsensusMsg::ValueRequest { cid: 80 });
    cluster.run_to_quiescence();
    // Only the fresh cid produced a reply, observable as replica 3
    // ignoring it (it already decided 80). No panic = pass; check
    // stronger: replica 3's decision count unchanged.
    assert_eq!(cluster.decisions(3).len(), 80);
}

#[test]
fn writes_buffered_during_sync_complete_after_sync() {
    // Reproduce the race the randomized tests exposed: a replica
    // receives WRITE votes for the post-sync epoch while it is still
    // collecting the sync itself; they must count afterwards.
    let mut cluster = Cluster::classic(4, 1);
    cluster.crash(NodeId(0));
    cluster.submit_to_all(req(1));
    // Force the leader change with randomized delivery across seeds;
    // progress must happen in every interleaving.
    for seed in 100..110u64 {
        let mut cluster = Cluster::classic(4, 1);
        cluster.randomize_order(seed);
        cluster.crash(NodeId(0));
        cluster.submit_to_all(req(1));
        for _ in 0..10 {
            cluster.advance_time(2_600);
            cluster.run_to_quiescence();
        }
        for i in 1..4 {
            assert_eq!(
                cluster.decisions(i).len(),
                1,
                "seed {seed} replica {i} stalled"
            );
        }
        cluster.assert_consistent();
    }
}

#[test]
fn request_dedup_survives_decisions() {
    let mut cluster = Cluster::classic(4, 1);
    cluster.submit_to_all(req(1));
    cluster.run_to_quiescence();
    // Resubmitting the same request after it decided must not create a
    // second instance.
    cluster.submit_to_all(req(1));
    cluster.run_to_quiescence();
    for i in 0..4 {
        assert_eq!(cluster.decisions(i).len(), 1, "replica {i}");
    }
}

#[test]
fn forward_reaches_leader_and_orders() {
    // A request submitted only to a follower is forwarded to the leader
    // after the first timeout stage and then ordered.
    let mut cluster = Cluster::classic(4, 1);
    cluster.submit_to(2, req(1));
    cluster.run_to_quiescence();
    assert!(cluster.decisions(0).is_empty());
    cluster.advance_time(2_500); // stage 1: forward
    cluster.run_to_quiescence();
    for i in 0..4 {
        assert_eq!(cluster.decisions(i).len(), 1, "replica {i}");
    }
}

#[test]
fn wheat_tentative_not_contradicted_by_commit() {
    let mut cluster = Cluster::wheat(5, 1);
    for seq in 1..=10 {
        cluster.submit_to_all(req(seq));
        cluster.run_to_quiescence();
    }
    for i in 0..5 {
        let events = cluster.observed(i);
        let tentatives = events
            .iter()
            .filter(|e| matches!(e, Observed::Tentative(..)))
            .count();
        let commits = events
            .iter()
            .filter(|e| matches!(e, Observed::Commit(..)))
            .count();
        assert_eq!(tentatives, 10, "replica {i}");
        assert_eq!(commits, 10, "replica {i}");
        assert!(!events.iter().any(|e| matches!(e, Observed::Rollback(_))));
    }
}

#[test]
fn stale_votes_from_previous_epoch_do_not_count() {
    // Votes signed for epoch 0 must be worthless once regency 1 runs.
    let signing = cluster_keys(4);
    let mut replica = standalone(4, 1, 3);
    // Install regency 1 via stops from 1 and 2 (plus own amplification).
    replica.on_message(0, NodeId(1), ConsensusMsg::Stop { regency: 1 });
    replica.on_message(0, NodeId(2), ConsensusMsg::Stop { regency: 1 });
    assert_eq!(replica.regency(), 1);

    // A stale epoch-0 write arrives: must not trigger anything even
    // after the sync concludes.
    let batch = Batch::new(vec![req(1)]);
    let stale = Vote::sign(&signing[2], VotePhase::Write, NodeId(2), 1, 0, batch.digest());
    let actions = replica.on_message(0, NodeId(2), ConsensusMsg::Write(stale));
    assert!(actions.is_empty());
}

#[test]
fn wheat_tentative_rollback_on_conflicting_sync() {
    // Exercise the tentative-rollback path end to end at one replica:
    // it tentatively delivers batch A after a WRITE quorum, then a
    // (Byzantine-flavoured) synchronization phase whose collect set
    // hides every write certificate re-binds batch B. The replica must
    // emit Rollback before adopting B.
    use hlf_consensus::messages::StopData;

    let n = 5;
    let (signing, verifying) = test_keys(n);
    let mut replica = Replica::new(
        Config::new(
            NodeId(4),
            QuorumSystem::wheat_binary(n, 1).unwrap(),
            verifying,
            signing[4].clone(),
        )
        .with_tentative_execution(true),
    );

    // Leader 0 proposes batch A.
    let batch_a = Batch::new(vec![req(1)]);
    let actions = replica.on_message(
        0,
        NodeId(0),
        ConsensusMsg::Propose {
            cid: 1,
            epoch: 0,
            batch: batch_a.clone(),
        },
    );
    assert!(actions
        .iter()
        .any(|a| matches!(a, Action::Broadcast(ConsensusMsg::Write(_)))));

    // WRITE votes from the two Vmax replicas (weight 2+2) plus our own
    // weight-1 vote reach the quorum weight of 5: tentative delivery.
    let mut tentative_seen = false;
    for i in [0usize, 1] {
        let vote = Vote::sign(
            &signing[i],
            VotePhase::Write,
            NodeId(i as u32),
            1,
            0,
            batch_a.digest(),
        );
        let actions = replica.on_message(0, NodeId(i as u32), ConsensusMsg::Write(vote));
        tentative_seen |= actions
            .iter()
            .any(|a| matches!(a, Action::DeliverTentative { cid: 1, .. }));
    }
    assert!(tentative_seen, "write quorum must deliver tentatively");

    // Regency change to 1 (leader = node 1).
    replica.on_message(0, NodeId(2), ConsensusMsg::Stop { regency: 1 });
    let actions = replica.on_message(0, NodeId(3), ConsensusMsg::Stop { regency: 1 });
    assert!(replica.is_syncing());
    assert!(actions
        .iter()
        .any(|a| matches!(a, Action::Send(NodeId(1), ConsensusMsg::StopData(_)))));

    // The new leader's SYNC carries an n-f = 4 entry collect set where
    // the write-voters 0 and 1 *hide* their certificates (this takes
    // two Byzantine replicas — beyond f — but it exercises exactly the
    // rollback path the paper's §4 mandates the application support).
    let batch_b = Batch::new(vec![req(2)]);
    let collect: Vec<StopData> = [0usize, 1, 2, 3]
        .iter()
        .map(|&i| {
            StopData::sign(
                &signing[i],
                NodeId(i as u32),
                1,
                1,
                None,
                None,
                vec![],
                None,
            )
        })
        .collect();
    let actions = replica.on_message(
        0,
        NodeId(1),
        ConsensusMsg::Sync {
            regency: 1,
            collect,
            cid: 1,
            batch: batch_b.clone(),
        },
    );
    assert!(
        actions.iter().any(|a| matches!(a, Action::Rollback { cid: 1 })),
        "conflicting re-proposal must roll the tentative delivery back: {actions:?}"
    );
    // And the replica proceeds with B in the new epoch.
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Broadcast(ConsensusMsg::Write(v)) if v.epoch == 1 && v.hash == batch_b.digest()
    )));
    assert_eq!(replica.metrics().rollbacks, 1);
}
