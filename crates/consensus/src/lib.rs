//! BFT-SMaRt's Mod-SMaRt consensus protocol and the WHEAT variant,
//! implemented sans-io.
//!
//! This crate is the replication substrate under the hlf-bft ordering
//! service (paper §4): the PROPOSE / WRITE / ACCEPT message pattern with
//! `⌈(n+f+1)/2⌉` quorums, a signed-certificate synchronization phase
//! (leader change), and WHEAT's two geo-replication optimizations —
//! weighted voting ([`quorum::QuorumSystem::wheat_binary`]) and
//! tentative execution ([`replica::Config::with_tentative_execution`]).
//!
//! The [`replica::Replica`] performs no I/O: it consumes requests,
//! messages and clock ticks, and emits [`replica::Action`]s. Drivers in
//! `hlf-smr` (threads) and `ordering-core` (discrete-event simulation)
//! carry those actions out.
//!
//! # Examples
//!
//! ```
//! use hlf_consensus::testing::Cluster;
//! use hlf_consensus::messages::Request;
//! use hlf_wire::ClientId;
//!
//! // Four replicas tolerate one Byzantine fault.
//! let mut cluster = Cluster::classic(4, 1);
//! cluster.submit_to_all(Request::new(ClientId(1), 1, &b"envelope"[..]));
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.decisions(2).len(), 1);
//! cluster.assert_consistent();
//! ```

pub mod messages;
pub mod obs;
pub mod quorum;
pub mod replica;
pub mod sync;
pub mod testing;

pub use messages::{Batch, ConsensusMsg, DecisionProof, Request, StopData, Vote, VotePhase};
pub use obs::{HealthObs, ReplicaObs};
pub use quorum::{QuorumError, QuorumSystem};
pub use replica::{Action, Config, Metrics, Replica};

use std::error::Error;
use std::fmt;

/// Errors surfaced by consensus validation logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusError {
    /// A decision or write certificate failed verification.
    InvalidProof(&'static str),
    /// A synchronization-phase collect set failed validation.
    InvalidCollect(&'static str),
    /// Invalid quorum-system configuration.
    Config(QuorumError),
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::InvalidProof(what) => write!(f, "invalid proof: {what}"),
            ConsensusError::InvalidCollect(what) => write!(f, "invalid collect set: {what}"),
            ConsensusError::Config(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl Error for ConsensusError {}

impl From<QuorumError> for ConsensusError {
    fn from(e: QuorumError) -> Self {
        ConsensusError::Config(e)
    }
}
