//! Replica-side observability: per-phase latency histograms and
//! protocol event counters, resolved once from an [`hlf_obs::Registry`]
//! so the consensus hot path records through bare `Arc` derefs.
//!
//! Metric names (see DESIGN.md §Observability):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `consensus.replica.write_phase_ms`  | histogram | PROPOSE accepted → WRITE quorum |
//! | `consensus.replica.accept_phase_ms` | histogram | WRITE quorum → decision |
//! | `consensus.replica.decide_ms`       | histogram | PROPOSE accepted → decision |
//! | `consensus.replica.write_quorum_votes`  | histogram | matching WRITE votes when the quorum formed |
//! | `consensus.replica.accept_quorum_votes` | histogram | ACCEPT votes in the decision proof |
//! | `consensus.replica.decided`              | counter | instances decided |
//! | `consensus.replica.tentative_deliveries` | counter | WHEAT tentative deliveries |
//! | `consensus.replica.rollbacks`            | counter | tentative deliveries undone |
//! | `consensus.replica.regency_changes`      | counter | leader changes installed |
//! | `consensus.replica.pending_requests`     | gauge   | requests waiting to be ordered |
//! | `consensus.pipeline.window`      | gauge     | in-flight slots with an installed proposal |
//! | `consensus.pipeline.ooo_votes`   | histogram | vote slot depth above the frontier (out-of-order) |
//! | `consensus.pipeline.reproposals` | counter   | in-flight slots re-proposed by a new regent |

use hlf_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Handles to every replica metric. Cheap to clone (a few `Arc`s);
/// attach with [`crate::replica::Replica::attach_obs`].
#[derive(Clone, Debug)]
pub struct ReplicaObs {
    /// PROPOSE accepted → WRITE quorum reached, in ms of replica time.
    pub write_phase_ms: Arc<Histogram>,
    /// WRITE quorum reached → instance decided, in ms of replica time.
    pub accept_phase_ms: Arc<Histogram>,
    /// PROPOSE accepted → instance decided, in ms of replica time.
    pub decide_ms: Arc<Histogram>,
    /// Matching WRITE votes counted the moment the quorum formed.
    pub write_quorum_votes: Arc<Histogram>,
    /// ACCEPT votes bundled into the decision proof.
    pub accept_quorum_votes: Arc<Histogram>,
    /// Instances decided.
    pub decided: Arc<Counter>,
    /// WHEAT tentative deliveries emitted.
    pub tentative_deliveries: Arc<Counter>,
    /// Tentative deliveries rolled back by a leader change.
    pub rollbacks: Arc<Counter>,
    /// Regency (leader) changes installed.
    pub regency_changes: Arc<Counter>,
    /// Requests currently waiting to be ordered.
    pub pending_requests: Arc<Gauge>,
    /// In-flight window occupancy: slots holding an installed proposal.
    pub pipeline_window: Arc<Gauge>,
    /// Depth above the frontier of each accepted out-of-order vote.
    pub pipeline_ooo_votes: Arc<Histogram>,
    /// In-flight slots re-proposed (rebound) by a new regent's SYNC.
    pub pipeline_reproposals: Arc<Counter>,
}

impl ReplicaObs {
    /// Resolves (creating on first use) every replica metric in
    /// `registry`.
    pub fn new(registry: &Registry) -> ReplicaObs {
        ReplicaObs {
            write_phase_ms: registry.histogram("consensus.replica.write_phase_ms"),
            accept_phase_ms: registry.histogram("consensus.replica.accept_phase_ms"),
            decide_ms: registry.histogram("consensus.replica.decide_ms"),
            write_quorum_votes: registry.histogram("consensus.replica.write_quorum_votes"),
            accept_quorum_votes: registry.histogram("consensus.replica.accept_quorum_votes"),
            decided: registry.counter("consensus.replica.decided"),
            tentative_deliveries: registry.counter("consensus.replica.tentative_deliveries"),
            rollbacks: registry.counter("consensus.replica.rollbacks"),
            regency_changes: registry.counter("consensus.replica.regency_changes"),
            pending_requests: registry.gauge("consensus.replica.pending_requests"),
            pipeline_window: registry.gauge("consensus.pipeline.window"),
            pipeline_ooo_votes: registry.histogram("consensus.pipeline.ooo_votes"),
            pipeline_reproposals: registry.counter("consensus.pipeline.reproposals"),
        }
    }
}

/// Handles to the slow-replica health metrics fed by the replica's
/// [`hlf_obs::StragglerDetector`]:
///
/// | name | kind | meaning |
/// |------|------|---------|
/// | `consensus.health.vote_lag_us`      | histogram | per-vote arrival lag across all peers |
/// | `consensus.health.suspicions`       | counter   | peers newly flagged as stragglers |
/// | `consensus.health.suspected_peers`  | gauge     | peers currently suspected |
/// | `consensus.health.peer_lag_us.N`    | gauge     | peer N's EWMA vote-arrival lag |
#[derive(Clone, Debug)]
pub struct HealthObs {
    /// Vote-arrival lag samples (µs) from every peer, every vote.
    pub vote_lag_us: Arc<Histogram>,
    /// Peers newly flagged as stragglers (clears not counted).
    pub suspicions: Arc<Counter>,
    /// Peers currently under suspicion.
    pub suspected_peers: Arc<Gauge>,
    /// Per-peer EWMA vote-arrival lag (µs), indexed by replica id.
    pub peer_lag_us: Vec<Arc<Gauge>>,
}

impl HealthObs {
    /// Resolves (creating on first use) the health metrics for an
    /// `n`-replica group in `registry`.
    pub fn new(registry: &Registry, n: usize) -> HealthObs {
        HealthObs {
            vote_lag_us: registry.histogram("consensus.health.vote_lag_us"),
            suspicions: registry.counter("consensus.health.suspicions"),
            suspected_peers: registry.gauge("consensus.health.suspected_peers"),
            peer_lag_us: (0..n)
                .map(|i| registry.gauge(&format!("consensus.health.peer_lag_us.{i}")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_metrics() {
        let registry = Registry::new("replica-obs-test");
        let obs = ReplicaObs::new(&registry);
        obs.decided.inc();
        obs.write_phase_ms.record(3);
        obs.pending_requests.set(7);
        obs.pipeline_window.set(3);
        obs.pipeline_ooo_votes.record(2);
        obs.pipeline_reproposals.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("consensus.replica.decided"), Some(1));
        assert_eq!(snap.gauge_value("consensus.pipeline.window"), Some(3));
        assert_eq!(snap.counter_value("consensus.pipeline.reproposals"), Some(1));
        assert_eq!(snap.histogram("consensus.pipeline.ooo_votes").unwrap().count, 1);
        assert_eq!(
            snap.histogram("consensus.replica.write_phase_ms").unwrap().count,
            1
        );
        assert_eq!(snap.gauge_value("consensus.replica.pending_requests"), Some(7));
        // Second resolution returns the same underlying metrics.
        let again = ReplicaObs::new(&registry);
        again.decided.inc();
        assert_eq!(obs.decided.get(), 2);
    }

    #[test]
    fn health_obs_resolves_per_peer_gauges() {
        let registry = Registry::new("health-obs-test");
        let health = HealthObs::new(&registry, 4);
        assert_eq!(health.peer_lag_us.len(), 4);
        health.vote_lag_us.record(1_500);
        health.suspicions.inc();
        health.suspected_peers.set(1);
        health.peer_lag_us[3].set(150_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("consensus.health.suspicions"), Some(1));
        assert_eq!(snap.gauge_value("consensus.health.peer_lag_us.3"), Some(150_000));
        assert_eq!(snap.histogram("consensus.health.vote_lag_us").unwrap().count, 1);
    }
}
