//! Quorum systems: classic cardinality quorums and WHEAT's weighted
//! binary vote assignment.
//!
//! BFT-SMaRt forms quorums of `⌈(n+f+1)/2⌉` replicas. WHEAT
//! ("Separating the WHEAT from the chaff", SRDS 2015) adds `Δ` spare
//! replicas and assigns *votes*: `2f` replicas get `Vmax = 1 + Δ/f`
//! votes, the rest get `Vmin = 1`; a quorum is any set with total weight
//! of at least `2f·Vmax + 1`. With `f = 1, Δ = 1` (the paper's
//! geo-distributed setup) this yields weights `[2, 2, 1, 1, 1]` and
//! quorum weight 5, so the two `Vmax` replicas plus any third replica
//! already form a quorum — the mechanism that lets the fastest replicas
//! drive latency.

use crate::messages::Vote;
use hlf_crypto::sha256::Hash256;
use hlf_wire::NodeId;
use std::collections::HashMap;

/// Vote-weight assignment across a replica group.
///
/// # Examples
///
/// ```
/// use hlf_consensus::quorum::QuorumSystem;
/// use hlf_wire::NodeId;
///
/// // Classic BFT-SMaRt: n = 4, f = 1 — quorum is any 3 replicas.
/// let classic = QuorumSystem::classic(4, 1).unwrap();
/// assert!(classic.is_quorum([NodeId(0), NodeId(1), NodeId(2)].iter().copied()));
/// assert!(!classic.is_quorum([NodeId(0), NodeId(1)].iter().copied()));
///
/// // WHEAT with one spare: nodes 0 and 1 weigh 2 — three replicas
/// // including both heavy ones form a quorum.
/// let wheat = QuorumSystem::wheat_binary(5, 1).unwrap();
/// assert!(wheat.is_quorum([NodeId(0), NodeId(1), NodeId(4)].iter().copied()));
/// assert!(!wheat.is_quorum([NodeId(2), NodeId(3), NodeId(4)].iter().copied()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumSystem {
    weights: Vec<u64>,
    quorum_weight: u64,
    f: usize,
}

/// Error building a quorum system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumError {
    /// `n < 3f + 1`: the group cannot tolerate `f` Byzantine replicas.
    TooFewReplicas {
        /// Group size requested.
        n: usize,
        /// Fault threshold requested.
        f: usize,
    },
    /// WHEAT requires the number of spares `Δ = n - (3f+1)` to be a
    /// positive multiple of `f` for the binary assignment.
    InvalidSpares {
        /// Computed number of spare replicas.
        delta: usize,
        /// Fault threshold requested.
        f: usize,
    },
}

impl std::fmt::Display for QuorumError {
    fn fmt(&self, f2: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuorumError::TooFewReplicas { n, f } => {
                write!(f2, "n = {n} cannot tolerate f = {f} (need n >= 3f+1)")
            }
            QuorumError::InvalidSpares { delta, f } => {
                write!(f2, "delta = {delta} spares invalid for f = {f}")
            }
        }
    }
}

impl std::error::Error for QuorumError {}

impl QuorumSystem {
    /// Classic BFT-SMaRt quorums: every replica weighs 1 and a quorum is
    /// `⌈(n+f+1)/2⌉` replicas.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::TooFewReplicas`] when `n < 3f + 1` or
    /// `f == 0` with `n == 0`.
    pub fn classic(n: usize, f: usize) -> Result<QuorumSystem, QuorumError> {
        if n < 3 * f + 1 || n == 0 {
            return Err(QuorumError::TooFewReplicas { n, f });
        }
        Ok(QuorumSystem {
            weights: vec![1; n],
            quorum_weight: ((n + f + 1) as u64).div_ceil(2),
            f,
        })
    }

    /// WHEAT's binary vote assignment for `n = 3f + 1 + Δ` replicas.
    ///
    /// The first `2f` node ids receive `Vmax = 1 + Δ/f` votes and the
    /// rest `Vmin = 1`. Following the WHEAT paper, the caller should
    /// order node ids so the fastest replicas come first.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::TooFewReplicas`] if `n < 3f + 1`, and
    /// [`QuorumError::InvalidSpares`] if `Δ = n - (3f+1)` is zero or not
    /// a multiple of `f`.
    pub fn wheat_binary(n: usize, f: usize) -> Result<QuorumSystem, QuorumError> {
        if f == 0 || n < 3 * f + 1 {
            return Err(QuorumError::TooFewReplicas { n, f });
        }
        let delta = n - (3 * f + 1);
        if delta == 0 || !delta.is_multiple_of(f) {
            return Err(QuorumError::InvalidSpares { delta, f });
        }
        let vmax = 1 + (delta / f) as u64;
        let mut weights = vec![1u64; n];
        for w in weights.iter_mut().take(2 * f) {
            *w = vmax;
        }
        Ok(QuorumSystem {
            weights,
            quorum_weight: 2 * f as u64 * vmax + 1,
            f,
        })
    }

    /// Builds a quorum system from explicit weights and quorum weight.
    ///
    /// Useful for tests and for custom placements; the caller is
    /// responsible for the weight-safety condition (any two quorums
    /// intersect in more than `f·Vmax` weight).
    pub fn from_weights(weights: Vec<u64>, quorum_weight: u64, f: usize) -> QuorumSystem {
        QuorumSystem {
            weights,
            quorum_weight,
            f,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Byzantine fault threshold.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Weight of a single replica (0 for out-of-range ids).
    pub fn weight(&self, node: NodeId) -> u64 {
        self.weights.get(node.as_usize()).copied().unwrap_or(0)
    }

    /// Weight a vote set must reach to be a quorum.
    pub fn quorum_weight(&self) -> u64 {
        self.quorum_weight
    }

    /// Total weight of all replicas.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Sums the weights of `voters` (callers must deduplicate ids).
    pub fn weight_of(&self, voters: impl Iterator<Item = NodeId>) -> u64 {
        voters.map(|v| self.weight(v)).sum()
    }

    /// Returns `true` if `voters` (assumed distinct) form a quorum.
    pub fn is_quorum(&self, voters: impl Iterator<Item = NodeId>) -> bool {
        self.weight_of(voters) >= self.quorum_weight
    }

    /// The `f + 1` threshold by count — enough to contain one correct
    /// replica. Used for STOP amplification and reply voting.
    pub fn one_correct_count(&self) -> usize {
        self.f + 1
    }

    /// The `2f + 1` threshold by count — the classic "certified" count
    /// used by frontends collecting matching blocks.
    pub fn certify_count(&self) -> usize {
        2 * self.f + 1
    }

    /// Replicas needed in a synchronization-phase collect set (`n - f`).
    pub fn collect_count(&self) -> usize {
        self.n() - self.f
    }

    /// All node ids in this group.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }
}

/// Per-slot vote collection: one tracker per consensus slot and phase,
/// so votes arriving out of order across a pipelined window accumulate
/// independently and quorum detection stays a pure function of the
/// votes seen for *that* slot.
///
/// At most one vote per node is kept (a newer vote from the same node
/// replaces the old one, matching the single-instance behaviour);
/// equivocation between *slots* therefore cannot leak weight from one
/// tracker into another.
#[derive(Clone, Debug, Default)]
pub struct QuorumTracker {
    votes: HashMap<NodeId, Vote>,
}

impl QuorumTracker {
    /// An empty tracker.
    pub fn new() -> QuorumTracker {
        QuorumTracker {
            votes: HashMap::new(),
        }
    }

    /// Number of distinct voters seen.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// `true` when no votes were recorded.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// `true` if `node` already voted on this slot/phase.
    pub fn contains(&self, node: NodeId) -> bool {
        self.votes.contains_key(&node)
    }

    /// Records `vote` under its signer, replacing any earlier vote from
    /// the same node.
    pub fn insert(&mut self, vote: Vote) {
        self.votes.insert(vote.node, vote);
    }

    /// The value hash backed by a quorum of recorded voters, if any.
    ///
    /// Votes are grouped by hash; voters are distinct by construction,
    /// so the group weights feed [`QuorumSystem::is_quorum`] directly.
    pub fn quorum_hash(&self, quorums: &QuorumSystem) -> Option<Hash256> {
        let mut by_hash: HashMap<Hash256, Vec<NodeId>> = HashMap::new();
        for vote in self.votes.values() {
            by_hash.entry(vote.hash).or_default().push(vote.node);
        }
        by_hash
            .into_iter()
            .find(|(_, voters)| quorums.is_quorum(voters.iter().copied()))
            .map(|(hash, _)| hash)
    }

    /// The votes matching `hash`, sorted by node id — a certificate
    /// usable in decision proofs and view-change collect messages.
    pub fn votes_for(&self, hash: Hash256) -> Vec<Vote> {
        let mut cert: Vec<Vote> = self
            .votes
            .values()
            .filter(|v| v.hash == hash)
            .cloned()
            .collect();
        cert.sort_by_key(|v| v.node.0);
        cert
    }

    /// Iterates over all recorded votes.
    pub fn iter(&self) -> impl Iterator<Item = &Vote> {
        self.votes.values()
    }

    /// Forgets all votes (epoch bump on a slot).
    pub fn clear(&mut self) {
        self.votes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> impl Iterator<Item = NodeId> + '_ {
        v.iter().map(|&i| NodeId(i))
    }

    #[test]
    fn classic_sizes_match_paper_clusters() {
        // The paper's LAN experiments: n = 4, 7, 10 tolerate f = 1, 2, 3.
        for (n, f, q) in [(4, 1, 3), (7, 2, 5), (10, 3, 7)] {
            let sys = QuorumSystem::classic(n, f).unwrap();
            assert_eq!(sys.quorum_weight(), q, "n={n}");
            assert_eq!(sys.total_weight(), n as u64);
            assert_eq!(sys.certify_count(), 2 * f + 1);
            assert_eq!(sys.collect_count(), n - f);
        }
    }

    #[test]
    fn classic_rejects_undersized_groups() {
        assert_eq!(
            QuorumSystem::classic(3, 1),
            Err(QuorumError::TooFewReplicas { n: 3, f: 1 })
        );
        assert_eq!(
            QuorumSystem::classic(0, 0),
            Err(QuorumError::TooFewReplicas { n: 0, f: 0 })
        );
    }

    #[test]
    fn wheat_paper_configuration() {
        // Five replicas, f = 1: weights [2,2,1,1,1], quorum weight 5.
        let sys = QuorumSystem::wheat_binary(5, 1).unwrap();
        assert_eq!(sys.weight(NodeId(0)), 2);
        assert_eq!(sys.weight(NodeId(1)), 2);
        assert_eq!(sys.weight(NodeId(2)), 1);
        assert_eq!(sys.weight(NodeId(4)), 1);
        assert_eq!(sys.quorum_weight(), 5);
        assert_eq!(sys.total_weight(), 7);

        // Fast path: both Vmax replicas + any third.
        assert!(sys.is_quorum(ids(&[0, 1, 2])));
        assert!(sys.is_quorum(ids(&[0, 1, 4])));
        // One Vmax + all Vmin also works (weight 5)...
        assert!(sys.is_quorum(ids(&[0, 2, 3, 4])));
        // ...but three Vmin alone do not.
        assert!(!sys.is_quorum(ids(&[2, 3, 4])));
        assert!(!sys.is_quorum(ids(&[0, 1])));
    }

    #[test]
    fn wheat_quorum_intersection_exceeds_byzantine_weight() {
        // Exhaustively check the safety condition for the paper's setup:
        // any two quorums intersect in weight > f * Vmax = 2.
        let sys = QuorumSystem::wheat_binary(5, 1).unwrap();
        let all: Vec<u32> = (0..5).collect();
        let subsets = 1u32 << 5;
        let quorums: Vec<u32> = (0..subsets)
            .filter(|mask| {
                let members = all.iter().filter(|&&i| mask & (1 << i) != 0).copied();
                sys.is_quorum(members.map(NodeId))
            })
            .collect();
        for &a in &quorums {
            for &b in &quorums {
                let inter = a & b;
                let weight: u64 = (0..5)
                    .filter(|i| inter & (1 << i) != 0)
                    .map(|i| sys.weight(NodeId(i)))
                    .sum();
                assert!(weight > 2, "quorums {a:b} and {b:b} intersect too little");
            }
        }
    }

    #[test]
    fn wheat_rejects_invalid_spares() {
        // n = 4 has delta = 0.
        assert_eq!(
            QuorumSystem::wheat_binary(4, 1),
            Err(QuorumError::InvalidSpares { delta: 0, f: 1 })
        );
        // f = 2, n = 8 -> delta = 1, not a multiple of 2.
        assert_eq!(
            QuorumSystem::wheat_binary(8, 2),
            Err(QuorumError::InvalidSpares { delta: 1, f: 2 })
        );
        // f = 2, n = 9 -> delta = 2: valid, Vmax = 2.
        let sys = QuorumSystem::wheat_binary(9, 2).unwrap();
        assert_eq!(sys.weight(NodeId(0)), 2);
        assert_eq!(sys.weight(NodeId(3)), 2);
        assert_eq!(sys.weight(NodeId(4)), 1);
        assert_eq!(sys.quorum_weight(), 9);
    }

    #[test]
    fn duplicate_voters_are_callers_responsibility() {
        let sys = QuorumSystem::classic(4, 1).unwrap();
        // Document the contract: weight_of sums blindly.
        assert_eq!(sys.weight_of(ids(&[0, 0, 0])), 3);
    }

    #[test]
    fn out_of_range_nodes_weigh_zero() {
        let sys = QuorumSystem::classic(4, 1).unwrap();
        assert_eq!(sys.weight(NodeId(99)), 0);
        assert!(!sys.is_quorum(ids(&[99, 98, 97])));
    }

    #[test]
    fn nodes_iterates_group() {
        let sys = QuorumSystem::classic(4, 1).unwrap();
        let nodes: Vec<NodeId> = sys.nodes().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn tracker_detects_quorum_per_hash() {
        use crate::messages::VotePhase;
        use hlf_crypto::ecdsa::SigningKey;
        let sys = QuorumSystem::classic(4, 1).unwrap();
        let keys: Vec<SigningKey> = (0..4)
            .map(|i| SigningKey::from_seed(format!("tracker-{i}").as_bytes()))
            .collect();
        let hash_a = hlf_crypto::sha256::sha256(b"value-a");
        let hash_b = hlf_crypto::sha256::sha256(b"value-b");
        let mut tracker = QuorumTracker::new();
        tracker.insert(Vote::sign(&keys[0], VotePhase::Write, NodeId(0), 7, 0, hash_a));
        tracker.insert(Vote::sign(&keys[1], VotePhase::Write, NodeId(1), 7, 0, hash_b));
        assert_eq!(tracker.quorum_hash(&sys), None);
        tracker.insert(Vote::sign(&keys[2], VotePhase::Write, NodeId(2), 7, 0, hash_a));
        assert_eq!(tracker.quorum_hash(&sys), None);
        tracker.insert(Vote::sign(&keys[3], VotePhase::Write, NodeId(3), 7, 0, hash_a));
        assert_eq!(tracker.quorum_hash(&sys), Some(hash_a));
        // The certificate holds only matching votes, in node order.
        let cert = tracker.votes_for(hash_a);
        assert_eq!(cert.len(), 3);
        assert!(cert.windows(2).all(|w| w[0].node.0 < w[1].node.0));
        assert!(cert.iter().all(|v| v.hash == hash_a));
    }

    #[test]
    fn tracker_replaces_duplicate_voter() {
        use crate::messages::VotePhase;
        use hlf_crypto::ecdsa::SigningKey;
        let sys = QuorumSystem::classic(4, 1).unwrap();
        let key = SigningKey::from_seed(b"tracker-dup");
        let hash = hlf_crypto::sha256::sha256(b"value");
        let mut tracker = QuorumTracker::new();
        for _ in 0..5 {
            tracker.insert(Vote::sign(&key, VotePhase::Write, NodeId(0), 1, 0, hash));
        }
        assert_eq!(tracker.len(), 1);
        assert!(tracker.contains(NodeId(0)));
        assert_eq!(tracker.quorum_hash(&sys), None);
        tracker.clear();
        assert!(tracker.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For every valid classic configuration, two quorums must
            /// intersect in at least f+1 replicas.
            #[test]
            fn classic_intersection(f in 1usize..4) {
                let n = 3 * f + 1;
                let sys = QuorumSystem::classic(n, f).unwrap();
                let q = sys.quorum_weight() as usize;
                // Minimal quorums: any q replicas. Two sets of size q out
                // of n overlap in >= 2q - n >= f + 1.
                prop_assert!(2 * q > n + f);
            }

            /// WHEAT total weight and quorum weight satisfy the generic
            /// safety inequality 2*Qw - W > f*Vmax for valid deltas.
            #[test]
            fn wheat_inequality(f in 1usize..4, mult in 1usize..3) {
                let delta = f * mult;
                let n = 3 * f + 1 + delta;
                let sys = QuorumSystem::wheat_binary(n, f).unwrap();
                let vmax = 1 + (delta / f) as u64;
                // 2f replicas gain (Vmax - 1) = delta/f extra weight each.
                prop_assert_eq!(sys.total_weight(), (n as u64) + 2 * (delta as u64));
                prop_assert!(
                    2 * sys.quorum_weight() > sys.total_weight() + f as u64 * vmax
                );
            }
        }
    }
}
