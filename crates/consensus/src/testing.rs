//! A deterministic in-memory cluster harness for protocol tests.
//!
//! [`Cluster`] owns `n` [`Replica`]s and a message queue. Messages are
//! delivered one at a time — in FIFO order or in a seeded random order —
//! so every interleaving a test explores is reproducible. Crash faults,
//! message drops, and manual clock advancement are supported; Byzantine
//! behaviours are injected by crafting messages directly (see the
//! integration tests).

use crate::messages::{Batch, ConsensusMsg, Request};
use crate::quorum::QuorumSystem;
use crate::replica::{Action, Config, Replica};
use hlf_crypto::ecdsa::{SigningKey, VerifyingKey};
use hlf_wire::NodeId;
use std::collections::{HashSet, VecDeque};

/// A queued in-flight message.
#[derive(Clone, Debug)]
struct InFlight {
    from: NodeId,
    to: NodeId,
    msg: ConsensusMsg,
}

/// An event observed at a replica, in observation order.
#[derive(Clone, Debug, PartialEq)]
pub enum Observed {
    /// Tentative (WHEAT) delivery.
    Tentative(u64, Batch),
    /// Rollback of a tentative delivery.
    Rollback(u64),
    /// Final commit.
    Commit(u64, Batch),
    /// The replica asked for state transfer.
    Behind(u64),
}

/// Deterministic multi-replica test cluster.
pub struct Cluster {
    replicas: Vec<Replica>,
    queue: VecDeque<InFlight>,
    crashed: HashSet<NodeId>,
    /// Observed deliveries per replica.
    observed: Vec<Vec<Observed>>,
    now_ms: u64,
    rng_state: u64,
    /// When `Some(p)`, each delivery is dropped with probability `p`.
    drop_probability: Option<f64>,
    /// When true, pop a random queue element instead of the front.
    random_order: bool,
    steps: u64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.replicas.len())
            .field("queued", &self.queue.len())
            .field("now_ms", &self.now_ms)
            .finish()
    }
}

/// Deterministic key material for a test cluster of size `n`.
pub fn test_keys(n: usize) -> (Vec<SigningKey>, Vec<VerifyingKey>) {
    let signing: Vec<SigningKey> = (0..n)
        .map(|i| SigningKey::from_seed(format!("cluster-key-{i}").as_bytes()))
        .collect();
    let verifying = signing.iter().map(|k| *k.verifying_key()).collect();
    (signing, verifying)
}

impl Cluster {
    /// Builds a cluster with per-replica configs derived by `configure`.
    // lint:allow(panic): deterministic test harness — `test_keys(n)` returns exactly `n` keys for indices `0..n`
    pub fn with_configs(
        n: usize,
        quorums: QuorumSystem,
        configure: impl Fn(Config) -> Config,
    ) -> Cluster {
        let (signing, verifying) = test_keys(n);
        let replicas = (0..n)
            .map(|i| {
                let cfg = Config::new(
                    NodeId(i as u32),
                    quorums.clone(),
                    verifying.clone(),
                    signing[i].clone(),
                );
                Replica::new(configure(cfg))
            })
            .collect();
        Cluster {
            replicas,
            queue: VecDeque::new(),
            crashed: HashSet::new(),
            observed: vec![Vec::new(); n],
            now_ms: 0,
            rng_state: 0x9e3779b97f4a7c15,
            drop_probability: None,
            random_order: false,
            steps: 0,
        }
    }

    /// A classic BFT-SMaRt cluster (`n`, `f`).
    ///
    /// # Panics
    ///
    /// Panics on invalid `(n, f)`.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn classic(n: usize, f: usize) -> Cluster {
        Cluster::with_configs(n, QuorumSystem::classic(n, f).unwrap(), |c| c)
    }

    /// A WHEAT cluster with tentative execution enabled.
    ///
    /// # Panics
    ///
    /// Panics on invalid `(n, f)`.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn wheat(n: usize, f: usize) -> Cluster {
        Cluster::with_configs(n, QuorumSystem::wheat_binary(n, f).unwrap(), |c| {
            c.with_tentative_execution(true)
        })
    }

    /// Enables seeded random delivery order (explores interleavings).
    pub fn randomize_order(&mut self, seed: u64) {
        self.random_order = true;
        self.rng_state = seed;
    }

    /// Drops each queued delivery with probability `p` (seeded).
    pub fn set_drop_probability(&mut self, p: f64, seed: u64) {
        self.drop_probability = Some(p);
        self.rng_state = seed;
    }

    /// Crashes a replica: it receives nothing and sends nothing.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Immutable replica access.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn replica(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// Mutable replica access (e.g. to attach observability with
    /// [`Replica::attach_obs`] before driving traffic).
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn replica_mut(&mut self, i: usize) -> &mut Replica {
        &mut self.replicas[i]
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Events observed at replica `i`.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn observed(&self, i: usize) -> &[Observed] {
        &self.observed[i]
    }

    /// Final commits observed at replica `i`, in order.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn decisions(&self, i: usize) -> Vec<(u64, Batch)> {
        self.observed[i]
            .iter()
            .filter_map(|o| match o {
                Observed::Commit(cid, batch) => Some((*cid, batch.clone())),
                _ => None,
            })
            .collect()
    }

    /// Total messages processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn next_rand(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Submits a request to a single replica.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn submit_to(&mut self, i: usize, request: Request) {
        if self.crashed.contains(&NodeId(i as u32)) {
            return;
        }
        let now = self.now_ms;
        let actions = self.replicas[i].on_request(now, request);
        self.apply_actions(i, actions);
    }

    /// Submits a request to every replica (as BFT-SMaRt clients do).
    pub fn submit_to_all(&mut self, request: Request) {
        for i in 0..self.replicas.len() {
            self.submit_to(i, request.clone());
        }
    }

    /// Advances the clock and ticks every live replica.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn advance_time(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
        let now = self.now_ms;
        for i in 0..self.replicas.len() {
            if self.crashed.contains(&NodeId(i as u32)) {
                continue;
            }
            let actions = self.replicas[i].on_tick(now);
            self.apply_actions(i, actions);
        }
    }

    /// Feeds a hand-crafted message into a replica (Byzantine tests).
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn inject(&mut self, to: usize, from: NodeId, msg: ConsensusMsg) {
        let now = self.now_ms;
        let actions = self.replicas[to].on_message(now, from, msg);
        self.apply_actions(to, actions);
    }

    /// Simulates completed application-level state transfer at `i`.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn install_state(&mut self, i: usize, last_decided: u64) {
        let now = self.now_ms;
        let actions = self.replicas[i].install_state(now, last_decided);
        self.apply_actions(i, actions);
    }

    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    fn apply_actions(&mut self, from_index: usize, actions: Vec<Action>) {
        let from = NodeId(from_index as u32);
        if self.crashed.contains(&from) {
            return;
        }
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    for i in 0..self.replicas.len() {
                        if i != from_index {
                            self.queue.push_back(InFlight {
                                from,
                                to: NodeId(i as u32),
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                Action::Send(to, msg) => {
                    self.queue.push_back(InFlight { from, to, msg });
                }
                Action::DeliverTentative { cid, batch } => {
                    self.observed[from_index].push(Observed::Tentative(cid, batch));
                }
                Action::Rollback { cid } => {
                    self.observed[from_index].push(Observed::Rollback(cid));
                }
                Action::Commit { cid, batch, .. } => {
                    self.observed[from_index].push(Observed::Commit(cid, batch));
                }
                Action::Behind { target_cid } => {
                    self.observed[from_index].push(Observed::Behind(target_cid));
                }
            }
        }
    }

    /// Delivers one queued message. Returns `false` when idle.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn step(&mut self) -> bool {
        let in_flight = if self.random_order && self.queue.len() > 1 {
            let idx = (self.next_rand() % self.queue.len() as u64) as usize;
            self.queue.remove(idx)
        } else {
            self.queue.pop_front()
        };
        let Some(in_flight) = in_flight else {
            return false;
        };
        self.steps += 1;
        if self.crashed.contains(&in_flight.to) || self.crashed.contains(&in_flight.from) {
            return true;
        }
        if let Some(p) = self.drop_probability {
            let roll = (self.next_rand() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if roll < p {
                return true;
            }
        }
        let now = self.now_ms;
        let to = in_flight.to.as_usize();
        let actions = self.replicas[to].on_message(now, in_flight.from, in_flight.msg);
        self.apply_actions(to, actions);
        true
    }

    /// Runs until no messages remain (or a step budget is exhausted).
    pub fn run_to_quiescence(&mut self) {
        let budget = 2_000_000u64;
        let start = self.steps;
        while self.step() {
            assert!(
                self.steps - start < budget,
                "cluster failed to quiesce within {budget} steps"
            );
        }
    }

    /// Asserts the core safety property: no two replicas committed
    /// different batches for the same instance.
    ///
    /// # Panics
    ///
    /// Panics (test assertion) on divergence.
    pub fn assert_consistent(&self) {
        use std::collections::HashMap;
        let mut by_cid: HashMap<u64, (usize, hlf_crypto::sha256::Hash256)> = HashMap::new();
        for (i, events) in self.observed.iter().enumerate() {
            for event in events {
                if let Observed::Commit(cid, batch) = event {
                    let digest = batch.digest();
                    match by_cid.get(cid) {
                        None => {
                            by_cid.insert(*cid, (i, digest));
                        }
                        Some((first, existing)) => {
                            assert_eq!(
                                *existing, digest,
                                "instance {cid} decided differently at replicas {first} and {i}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Asserts every live replica committed the same ordered sequence
    /// of (cid, digest) pairs up to the shortest log.
    // lint:allow(panic): deterministic test harness — an out-of-range replica index is harness misuse and must fail the test loudly
    pub fn assert_prefix_consistent(&self) {
        let logs: Vec<Vec<(u64, hlf_crypto::sha256::Hash256)>> = (0..self.n())
            .map(|i| {
                self.decisions(i)
                    .into_iter()
                    .map(|(cid, batch)| (cid, batch.digest()))
                    .collect()
            })
            .collect();
        for a in 0..logs.len() {
            for b in a + 1..logs.len() {
                let common = logs[a].len().min(logs[b].len());
                assert_eq!(
                    &logs[a][..common],
                    &logs[b][..common],
                    "replicas {a} and {b} diverge"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlf_wire::Bytes;
    use hlf_wire::ClientId;

    fn req(seq: u64) -> Request {
        Request::new(ClientId(7), seq, Bytes::from(vec![seq as u8; 32]))
    }

    #[test]
    fn single_request_commits_everywhere() {
        let mut cluster = Cluster::classic(4, 1);
        cluster.submit_to_all(req(1));
        cluster.run_to_quiescence();
        for i in 0..4 {
            let d = cluster.decisions(i);
            assert_eq!(d.len(), 1, "replica {i}");
            assert_eq!(d[0].0, 1);
        }
        cluster.assert_consistent();
    }

    #[test]
    fn pipeline_of_requests_commits_in_order() {
        let mut cluster = Cluster::classic(4, 1);
        for seq in 1..=20 {
            cluster.submit_to_all(req(seq));
            cluster.run_to_quiescence();
        }
        for i in 0..4 {
            let cids: Vec<u64> = cluster.decisions(i).iter().map(|(c, _)| *c).collect();
            assert_eq!(cids, (1..=20).collect::<Vec<u64>>());
        }
        cluster.assert_prefix_consistent();
    }

    #[test]
    fn batched_requests_commit_together() {
        let mut cluster = Cluster::classic(4, 1);
        // Submit to followers first so nothing triggers an early
        // proposal, then to the leader, which batches all of them.
        for seq in 1..=10 {
            for i in 1..4 {
                cluster.submit_to(i, req(seq));
            }
        }
        for seq in 1..=10 {
            cluster.submit_to(0, req(seq));
        }
        cluster.run_to_quiescence();
        // The leader proposed seq 1 alone first (request-driven), then
        // the rest as one batch — or some similar split. All replicas
        // must agree on whatever happened.
        cluster.assert_prefix_consistent();
        let total: usize = cluster
            .decisions(1)
            .iter()
            .map(|(_, b)| b.len())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn larger_clusters_commit() {
        for (n, f) in [(7, 2), (10, 3)] {
            let mut cluster = Cluster::classic(n, f);
            cluster.submit_to_all(req(1));
            cluster.run_to_quiescence();
            for i in 0..n {
                assert_eq!(cluster.decisions(i).len(), 1, "n={n} replica {i}");
            }
            cluster.assert_consistent();
        }
    }

    #[test]
    fn crashed_follower_does_not_block() {
        let mut cluster = Cluster::classic(4, 1);
        cluster.crash(NodeId(3));
        cluster.submit_to_all(req(1));
        cluster.run_to_quiescence();
        for i in 0..3 {
            assert_eq!(cluster.decisions(i).len(), 1);
        }
        assert!(cluster.decisions(3).is_empty());
    }

    #[test]
    fn crashed_leader_triggers_regency_change_and_recovery() {
        let mut cluster = Cluster::classic(4, 1);
        cluster.crash(NodeId(0));
        cluster.submit_to_all(req(1));
        cluster.run_to_quiescence();
        // Nothing decides yet.
        for i in 1..4 {
            assert!(cluster.decisions(i).is_empty());
        }
        // Time passes: forward stage, then STOP stage.
        cluster.advance_time(2_500);
        cluster.run_to_quiescence();
        cluster.advance_time(2_500);
        cluster.run_to_quiescence();
        // Regency 1 installed, node 1 leads, request decided.
        for i in 1..4 {
            assert_eq!(cluster.replica(i).regency(), 1, "replica {i}");
            assert_eq!(cluster.decisions(i).len(), 1, "replica {i}");
        }
        cluster.assert_consistent();
    }

    #[test]
    fn random_delivery_order_preserves_safety() {
        for seed in 0..10 {
            let mut cluster = Cluster::classic(4, 1);
            cluster.randomize_order(seed);
            for seq in 1..=5 {
                cluster.submit_to_all(req(seq));
            }
            cluster.run_to_quiescence();
            cluster.assert_prefix_consistent();
        }
    }

    #[test]
    fn wheat_tentative_then_commit() {
        let mut cluster = Cluster::wheat(5, 1);
        cluster.submit_to_all(req(1));
        cluster.run_to_quiescence();
        for i in 0..5 {
            let events = cluster.observed(i);
            let tentative_pos = events
                .iter()
                .position(|e| matches!(e, Observed::Tentative(1, _)));
            let commit_pos = events
                .iter()
                .position(|e| matches!(e, Observed::Commit(1, _)));
            assert!(tentative_pos.is_some(), "replica {i} missed tentative");
            assert!(commit_pos.is_some(), "replica {i} missed commit");
            assert!(tentative_pos < commit_pos, "tentative precedes commit");
        }
        cluster.assert_consistent();
    }
}
