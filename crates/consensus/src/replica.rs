//! The Mod-SMaRt replica: a sans-io consensus state machine.
//!
//! The replica consumes *inputs* — client requests, peer messages, clock
//! ticks — and emits [`Action`]s: messages to send, batches to deliver,
//! tentative deliveries to roll back. It performs no I/O and reads no
//! clock, which lets the identical protocol logic run:
//!
//! * on real threads over [`hlf_transport`](https://docs.rs) channels
//!   for the LAN throughput experiments, and
//! * inside the [`hlf_simnet`](https://docs.rs) discrete-event simulator
//!   for the geo-distributed latency experiments.
//!
//! ## Protocol recap (paper §4)
//!
//! The leader of the current *regency* proposes a batch (PROPOSE); every
//! replica echoes a signed WRITE vote for the batch digest; on a quorum
//! of WRITEs a replica sends a signed ACCEPT; on a quorum of ACCEPTs the
//! batch is decided. WHEAT's *tentative execution* additionally delivers
//! the batch right after the WRITE quorum. Timeouts escalate through
//! request forwarding into a STOP / STOP-DATA / SYNC leader change.

use crate::messages::{
    Batch, ConsensusMsg, DecisionProof, Request, SlotRebind, SlotReport, StopData, Vote, VotePhase,
};
use crate::obs::{HealthObs, ReplicaObs};
use crate::quorum::{QuorumSystem, QuorumTracker};
use crate::sync::{select_window, validate_sync_window, MAX_WINDOW};
use hlf_crypto::ecdsa::{SigningKey, VerifyingKey};
use hlf_crypto::sha256::Hash256;
use hlf_obs::flight::EventKind;
use hlf_obs::{FlightRecorder, StragglerDetector};
use hlf_wire::{ClientId, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// How many future instances' messages a replica buffers while lagging.
const FUTURE_HORIZON: u64 = 64;
/// How many recent decisions are cached to answer `ValueRequest`s.
const RECENT_DECISIONS: usize = 64;
/// Per-client cap on remembered delivered request ids (dedup window).
const DEDUP_WINDOW: usize = 4096;

/// First 8 bytes of a digest as a little-endian `u64` — the compact
/// value identity flight events carry for the cluster auditor. Truncation
/// is fine: the auditor compares equality across replicas, it never
/// inverts the hash.
pub fn digest64(hash: &Hash256) -> u64 {
    hash.as_bytes()
        .iter()
        .take(8)
        .rev()
        .fold(0u64, |acc, &b| (acc << 8) | b as u64)
}

/// Folds node ids into a signer bitmap (bit `i` = node `i` signed).
/// The auditor pops the count and checks distinctness; n ≤ 64 holds for
/// every configuration this codebase runs.
fn signer_bitmap(nodes: impl Iterator<Item = NodeId>) -> u64 {
    nodes.fold(0u64, |mask, node| mask | 1u64 << (node.0 as u64 & 63))
}

/// Static configuration of a replica.
#[derive(Clone)]
pub struct Config {
    /// This replica's identity (an index below `quorums.n()`).
    pub node: NodeId,
    /// The quorum system (classic or WHEAT-weighted).
    pub quorums: QuorumSystem,
    /// Every replica's public key, indexed by node id.
    pub keys: Vec<VerifyingKey>,
    /// This replica's private key (for WRITE/ACCEPT votes and
    /// STOP-DATA records).
    pub signing_key: SigningKey,
    /// WHEAT tentative execution: deliver after the WRITE quorum.
    pub tentative_execution: bool,
    /// Maximum requests per proposed batch (the paper uses 400).
    pub batch_max: usize,
    /// Maximum total payload bytes per batch.
    pub max_batch_bytes: usize,
    /// Base request timeout; twice this triggers a leader change.
    pub request_timeout_ms: u64,
    /// Cap on the pending request pool.
    pub max_pending: usize,
    /// Sliding-window depth: how many consensus slots may run agreement
    /// at once. `1` reproduces classic one-at-a-time operation; larger
    /// values keep the WAN pipe full (decides still release in order).
    pub pipeline_depth: usize,
}

impl std::fmt::Debug for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Config")
            .field("node", &self.node)
            .field("n", &self.quorums.n())
            .field("f", &self.quorums.f())
            .field("tentative_execution", &self.tentative_execution)
            .field("batch_max", &self.batch_max)
            .field("pipeline_depth", &self.pipeline_depth)
            .finish()
    }
}

impl Config {
    /// A classic BFT-SMaRt configuration with paper defaults
    /// (batches of up to 400 requests, 2 s request timeout).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != quorums.n()` or `node` is out of range.
    pub fn new(
        node: NodeId,
        quorums: QuorumSystem,
        keys: Vec<VerifyingKey>,
        signing_key: SigningKey,
    ) -> Config {
        assert_eq!(keys.len(), quorums.n(), "one key per replica");
        assert!(node.as_usize() < quorums.n(), "node id out of range");
        Config {
            node,
            quorums,
            keys,
            signing_key,
            tentative_execution: false,
            batch_max: 400,
            max_batch_bytes: 8 * 1024 * 1024,
            request_timeout_ms: 2_000,
            max_pending: 100_000,
            pipeline_depth: 1,
        }
    }

    /// Enables WHEAT tentative execution.
    pub fn with_tentative_execution(mut self, enabled: bool) -> Config {
        self.tentative_execution = enabled;
        self
    }

    /// Overrides the batch size limit.
    pub fn with_batch_max(mut self, batch_max: usize) -> Config {
        self.batch_max = batch_max;
        self
    }

    /// Overrides the request timeout.
    pub fn with_request_timeout_ms(mut self, ms: u64) -> Config {
        self.request_timeout_ms = ms;
        self
    }

    /// Sets the in-flight consensus window depth, clamped to
    /// `1..=`[`MAX_WINDOW`] (the view-change protocol's horizon).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Config {
        self.pipeline_depth = depth.clamp(1, MAX_WINDOW as usize);
        self
    }
}

/// An effect the driver must carry out.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Send `msg` to every *other* replica.
    Broadcast(ConsensusMsg),
    /// Send `msg` to one replica.
    Send(NodeId, ConsensusMsg),
    /// WHEAT only: the batch reached a WRITE quorum and is delivered
    /// tentatively; a later [`Action::Rollback`] may undo it.
    DeliverTentative {
        /// Instance delivered tentatively.
        cid: u64,
        /// The tentatively delivered batch.
        batch: Batch,
    },
    /// Undo the tentative delivery of `cid` (leader change re-bound a
    /// different value).
    Rollback {
        /// Instance whose tentative delivery is revoked.
        cid: u64,
    },
    /// Final, irreversible decision of `cid`.
    Commit {
        /// Decided instance.
        cid: u64,
        /// Decided batch.
        batch: Batch,
        /// Transferable quorum proof of the decision.
        proof: DecisionProof,
    },
    /// The replica detected it is behind: the application layer should
    /// run state transfer up to `target_cid`.
    Behind {
        /// First instance the rest of the group is working on.
        target_cid: u64,
    },
}

/// Counters exposed for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Instances decided.
    pub decided_instances: u64,
    /// Requests delivered inside decided batches.
    pub delivered_requests: u64,
    /// Regency changes installed.
    pub regency_changes: u64,
    /// Tentative deliveries rolled back.
    pub rollbacks: u64,
    /// In-flight slots re-proposed by a new regent's SYNC.
    pub reproposals: u64,
}

/// Per-instance consensus state.
#[derive(Debug)]
struct Instance {
    /// Epoch = the regency this round runs under.
    epoch: u32,
    batch: Option<Batch>,
    hash: Option<Hash256>,
    writes: QuorumTracker,
    accepts: QuorumTracker,
    write_sent: bool,
    accept_sent: bool,
    /// Digest delivered tentatively (WHEAT), if any.
    tentative: Option<Hash256>,
    /// The slot's irrevocable decision (accept quorum reached), held
    /// until every lower slot has committed: decides release strictly
    /// in order even when quorums complete out of order.
    decided: Option<(Batch, DecisionProof)>,
    /// Sticky across epoch bumps: our most recent WRITE in this
    /// instance, its value, and supporting votes (the potential
    /// certificate reported in STOP-DATA).
    last_write: Option<(u32, Hash256)>,
    last_write_value: Option<Batch>,
    last_write_cert: Vec<Vote>,
    /// Replica clock when the current epoch's proposal was installed
    /// (phase-timing anchor; reset on epoch bumps).
    proposed_at: Option<u64>,
    /// Replica clock when the WRITE quorum first formed this epoch.
    write_quorum_at: Option<u64>,
}

impl Instance {
    fn new(epoch: u32) -> Instance {
        Instance {
            epoch,
            batch: None,
            hash: None,
            writes: QuorumTracker::new(),
            accepts: QuorumTracker::new(),
            write_sent: false,
            accept_sent: false,
            tentative: None,
            decided: None,
            last_write: None,
            last_write_value: None,
            last_write_cert: Vec::new(),
            proposed_at: None,
            write_quorum_at: None,
        }
    }

    /// Resets per-epoch vote state while keeping the sticky write
    /// history (used when a regency change bumps the epoch).
    fn bump_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.batch = None;
        self.hash = None;
        self.writes.clear();
        self.accepts.clear();
        self.write_sent = false;
        self.accept_sent = false;
        self.proposed_at = None;
        self.write_quorum_at = None;
        // `tentative` is kept: a rollback is only emitted if the new
        // epoch binds a different value. `decided` is kept too — an
        // accept quorum is irrevocable across regencies.
    }
}

/// The Mod-SMaRt consensus replica.
///
/// # Examples
///
/// Drive four replicas by hand through one instance (the
/// [`crate::testing::Cluster`] harness automates this):
///
/// ```
/// use hlf_consensus::testing::Cluster;
/// use hlf_consensus::messages::Request;
/// use hlf_wire::ClientId;
///
/// let mut cluster = Cluster::classic(4, 1);
/// cluster.submit_to_all(Request::new(ClientId(1), 1, &b"tx"[..]));
/// cluster.run_to_quiescence();
/// let decisions = cluster.decisions(0);
/// assert_eq!(decisions.len(), 1);
/// assert_eq!(decisions[0].1.requests[0].payload.as_ref(), b"tx");
/// ```
pub struct Replica {
    cfg: Config,
    regency: u32,
    /// Current undecided instance id (instances start at 1).
    next_cid: u64,
    /// Live agreement slots, keyed by instance id. All keys lie in
    /// `next_cid .. next_cid + pipeline_depth` (the sliding window);
    /// entries are created lazily and removed when the slot commits.
    insts: BTreeMap<u64, Instance>,
    /// FIFO pool of requests not yet decided.
    pending: VecDeque<Request>,
    pending_ids: HashSet<(ClientId, u64)>,
    /// Recently delivered request ids per client (dedup).
    delivered: HashMap<ClientId, BTreeSet<u64>>,
    /// Most recent decision (reported in STOP-DATA).
    last_decision: Option<(u64, Batch, DecisionProof)>,
    recent_decisions: VecDeque<(u64, Batch, DecisionProof)>,
    // Timeout machinery.
    now_ms: u64,
    oldest_pending_since: Option<u64>,
    forwarded: bool,
    timeout_ms: u64,
    // Regency change.
    stop_votes: BTreeMap<u32, BTreeSet<NodeId>>,
    stop_sent_for: u32,
    syncing: bool,
    sync_started_at: u64,
    collect: HashMap<NodeId, StopData>,
    /// SYNC accepted while behind, adopted after state transfer
    /// (regency, frontier cid, frontier batch, window rebinds).
    pending_sync: Option<(u32, u64, Batch, Vec<SlotRebind>)>,
    // Catch-up.
    future: BTreeMap<u64, Vec<(NodeId, ConsensusMsg)>>,
    fetching_value: bool,
    fetch_started_at: u64,
    /// Current-instance agreement messages that arrived while a
    /// synchronization phase was in progress (or for a newer epoch than
    /// ours); replayed once the sync concludes.
    sync_buffer: Vec<(NodeId, ConsensusMsg)>,
    /// STOP-DATA records that reached us (as prospective leader) before
    /// our own STOP quorum installed the regency.
    early_stopdata: Vec<(NodeId, StopData)>,
    metrics: Metrics,
    /// Optional per-phase histograms and event counters (attached by
    /// the runtime when a registry exists; `None` costs nothing).
    obs: Option<ReplicaObs>,
    /// Optional flight recorder for distributed tracing; records
    /// protocol events and auto-dumps on anomalies (regency change,
    /// rollback). `None` costs nothing.
    flight: Option<Arc<FlightRecorder>>,
    /// Per-peer vote-arrival EWMAs flagging slow replicas.
    health: StragglerDetector,
    /// Optional metric handles the health detector reports through.
    health_obs: Option<HealthObs>,
    /// Propose times of recently decided instances `(cid, ms)`, so
    /// WRITE votes that arrive after the instance closed — the
    /// hallmark of a straggler — still feed the health detector.
    recent_proposed_at: VecDeque<(u64, u64)>,
    /// Replica clock when the frontier last advanced; a higher slot
    /// deciding while this sits still for a full timeout is a pipeline
    /// stall (auto-dumped to the flight recorder once per stall).
    frontier_since: u64,
    /// Whether the current stall already dumped the flight ring.
    stall_dumped: bool,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("node", &self.cfg.node)
            .field("regency", &self.regency)
            .field("next_cid", &self.next_cid)
            .field("pending", &self.pending.len())
            .field("syncing", &self.syncing)
            .finish()
    }
}

impl Replica {
    /// Creates a replica at regency 0, instance 1.
    pub fn new(cfg: Config) -> Replica {
        let timeout = cfg.request_timeout_ms;
        let n = cfg.quorums.n();
        Replica {
            insts: BTreeMap::new(),
            cfg,
            regency: 0,
            next_cid: 1,
            pending: VecDeque::new(),
            pending_ids: HashSet::new(),
            delivered: HashMap::new(),
            last_decision: None,
            recent_decisions: VecDeque::new(),
            now_ms: 0,
            oldest_pending_since: None,
            forwarded: false,
            timeout_ms: timeout,
            stop_votes: BTreeMap::new(),
            stop_sent_for: 0,
            syncing: false,
            sync_started_at: 0,
            collect: HashMap::new(),
            pending_sync: None,
            future: BTreeMap::new(),
            fetching_value: false,
            fetch_started_at: 0,
            sync_buffer: Vec::new(),
            early_stopdata: Vec::new(),
            metrics: Metrics::default(),
            obs: None,
            flight: None,
            health: StragglerDetector::new(n),
            health_obs: None,
            recent_proposed_at: VecDeque::new(),
            frontier_since: 0,
            stall_dumped: false,
        }
    }

    /// Attaches per-phase histograms and event counters (usually
    /// resolved from the owning node's registry). Without this the
    /// replica keeps only the plain [`Metrics`] counters.
    pub fn attach_obs(&mut self, obs: ReplicaObs) {
        self.obs = Some(obs);
    }

    /// Attaches a flight recorder: subsequent protocol steps record
    /// trace events into it, and anomalies (regency change, tentative
    /// rollback) snapshot the ring. Event timestamps use the replica's
    /// own `now_ms` clock (µs-scaled), so simulated runs stay
    /// deterministic.
    pub fn attach_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Attaches metric handles for the slow-replica health detector.
    pub fn attach_health_obs(&mut self, obs: HealthObs) {
        self.health_obs = Some(obs);
    }

    /// The slow-replica health detector's current view.
    pub fn health(&self) -> &StragglerDetector {
        &self.health
    }

    /// Records a flight event stamped with replica time (ms → µs).
    #[inline]
    fn flight_record(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if let Some(flight) = &self.flight {
            flight.record(self.now_ms * 1000, kind, a, b, c);
        }
    }

    /// Feeds one vote-arrival lag into the health detector, mirroring
    /// the outcome into metrics and the flight recorder.
    fn observe_vote_lag(&mut self, peer: NodeId, lag_us: u64) {
        let transition = self.health.observe(peer.as_usize(), lag_us);
        if let Some(obs) = &self.health_obs {
            obs.vote_lag_us.record(lag_us);
            if let Some(ewma) = self.health.peer_lag_us(peer.as_usize()) {
                if let Some(gauge) = obs.peer_lag_us.get(peer.as_usize()) {
                    gauge.set(ewma as i64);
                }
            }
            if let Some(ev) = transition {
                if ev.suspected {
                    obs.suspicions.inc();
                }
                obs.suspected_peers
                    .set(self.health.suspected_peers().len() as i64);
            }
        }
        if let Some(ev) = transition {
            if ev.suspected {
                hlf_obs::info!(
                    "replica {} suspects peer {} as slow (ewma {}us vs median {}us)",
                    self.cfg.node.as_usize(),
                    ev.peer,
                    ev.ewma_us,
                    ev.median_us
                );
                self.flight_record(
                    EventKind::Suspect,
                    ev.peer as u64,
                    ev.ewma_us,
                    ev.median_us,
                );
            }
        }
    }

    /// This replica's id.
    pub fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// Current regency.
    pub fn regency(&self) -> u32 {
        self.regency
    }

    /// The leader of regency `r` is replica `r mod n`.
    pub fn leader_of(&self, regency: u32) -> NodeId {
        NodeId(regency % self.cfg.quorums.n() as u32)
    }

    /// Current leader.
    pub fn leader(&self) -> NodeId {
        self.leader_of(self.regency)
    }

    /// Returns `true` if this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.cfg.node
    }

    /// The instance currently being agreed on.
    pub fn next_cid(&self) -> u64 {
        self.next_cid
    }

    /// Number of requests waiting to be ordered.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Returns `true` while a synchronization phase is in progress.
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// Configured sliding-window depth (1 = unpipelined).
    pub fn pipeline_depth(&self) -> usize {
        self.cfg.pipeline_depth
    }

    /// Window slots currently holding an installed proposal.
    pub fn window_occupancy(&self) -> usize {
        self.insts.values().filter(|i| i.batch.is_some()).count()
    }

    // ------------------------------------------------------------------
    // Window bookkeeping
    // ------------------------------------------------------------------

    /// One past the highest slot the window admits.
    fn window_end(&self) -> u64 {
        self.next_cid + self.cfg.pipeline_depth as u64
    }

    /// Epoch a vote for `cid` must carry: the slot's live epoch, or the
    /// current regency for a slot with no state yet.
    fn slot_epoch(&self, cid: u64) -> u32 {
        self.insts.get(&cid).map_or(self.regency, |i| i.epoch)
    }

    /// The live slot for `cid`, created lazily at the current regency.
    fn inst_mut(&mut self, cid: u64) -> &mut Instance {
        let regency = self.regency;
        self.insts.entry(cid).or_insert_with(|| Instance::new(regency))
    }

    /// Request ids proposed in any live slot. Excluded from new batches
    /// so the pipeline never orders the same request in two slots.
    fn in_flight_ids(&self) -> HashSet<(ClientId, u64)> {
        self.insts
            .values()
            .filter_map(|i| i.batch.as_ref())
            .flat_map(|b| b.requests.iter().map(|r| r.id()))
            .collect()
    }

    /// Mirrors window occupancy into the pipeline gauge.
    fn update_window_gauge(&self) {
        if let Some(obs) = &self.obs {
            obs.pipeline_window.set(self.window_occupancy() as i64);
        }
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Handles a client request arriving at this replica.
    pub fn on_request(&mut self, now_ms: u64, request: Request) -> Vec<Action> {
        self.now_ms = self.now_ms.max(now_ms);
        let mut actions = Vec::new();
        self.enqueue_request(request);
        self.try_propose(&mut actions);
        actions
    }

    /// Handles a message from peer `from`.
    pub fn on_message(&mut self, now_ms: u64, from: NodeId, msg: ConsensusMsg) -> Vec<Action> {
        self.now_ms = self.now_ms.max(now_ms);
        let mut actions = Vec::new();
        self.handle(from, msg, &mut actions);
        actions
    }

    /// Advances the replica's clock; drives timeout escalation.
    pub fn on_tick(&mut self, now_ms: u64) -> Vec<Action> {
        self.now_ms = self.now_ms.max(now_ms);
        let mut actions = Vec::new();
        // Retry an outstanding value fetch whose replies were lost.
        if self.fetching_value
            && self.now_ms.saturating_sub(self.fetch_started_at) > self.timeout_ms
        {
            self.fetching_value = false;
            self.maybe_fetch_gap(&mut actions);
        }
        if self.syncing {
            if self.now_ms.saturating_sub(self.sync_started_at) > self.timeout_ms {
                self.request_regency_change(self.regency + 1, &mut actions);
                self.sync_started_at = self.now_ms;
            }
            return actions;
        }
        // Pipeline stall: a higher slot already decided while the
        // frontier sat unresolved for a full timeout. Snapshot the
        // flight ring once per stall so the blockage is diagnosable.
        if !self.stall_dumped
            && self.now_ms.saturating_sub(self.frontier_since) > self.timeout_ms
            && self
                .insts
                .range(self.next_cid + 1..)
                .any(|(_, slot)| slot.decided.is_some())
        {
            self.stall_dumped = true;
            hlf_obs::info!(
                "replica {} pipeline stalled at cid {} (higher slot decided)",
                self.cfg.node.as_usize(),
                self.next_cid
            );
            if let Some(flight) = &self.flight {
                flight.anomaly_at(self.now_ms * 1000, "pipeline_stall");
            }
        }
        if let Some(t0) = self.oldest_pending_since {
            let age = self.now_ms.saturating_sub(t0);
            if age > self.timeout_ms && !self.forwarded {
                // Stage 1: forward pending requests to the leader in case
                // the client never reached it.
                self.forwarded = true;
                if !self.is_leader() {
                    let leader = self.leader();
                    for request in self.pending.iter().take(self.cfg.batch_max) {
                        actions.push(Action::Send(
                            leader,
                            ConsensusMsg::Forward {
                                request: request.clone(),
                            },
                        ));
                    }
                }
            }
            if age > 2 * self.timeout_ms {
                // Stage 2: demand a leader change.
                self.request_regency_change(self.regency + 1, &mut actions);
                self.oldest_pending_since = Some(self.now_ms);
                self.forwarded = false;
            }
        }
        actions
    }

    /// Installs state recovered through application-level state
    /// transfer: the replica resumes at `last_decided + 1`.
    ///
    /// Delivered request ids cannot be reconstructed here; the
    /// application's own dedup (e.g. the ordering service's envelope
    /// hashes) covers requests decided while this replica was behind.
    pub fn install_state(&mut self, now_ms: u64, last_decided: u64) -> Vec<Action> {
        self.now_ms = self.now_ms.max(now_ms);
        let mut actions = Vec::new();
        if last_decided < self.next_cid {
            return actions;
        }
        self.next_cid = last_decided + 1;
        self.insts.clear();
        self.fetching_value = false;
        self.frontier_since = self.now_ms;
        self.stall_dumped = false;
        self.update_window_gauge();
        if let Some((regency, cid, batch, rebinds)) = self.pending_sync.take() {
            if regency == self.regency && cid == self.next_cid {
                self.adopt_window(cid, batch, rebinds, &mut actions);
            }
        }
        self.drain_future(&mut actions);
        self.replay_sync_buffer(&mut actions);
        actions
    }

    // ------------------------------------------------------------------
    // Request pool
    // ------------------------------------------------------------------

    fn enqueue_request(&mut self, request: Request) {
        if self.pending.len() >= self.cfg.max_pending {
            return;
        }
        let id = request.id();
        if self.pending_ids.contains(&id) || self.was_delivered(&id) {
            return;
        }
        self.pending_ids.insert(id);
        self.pending.push_back(request);
        if let Some(obs) = &self.obs {
            obs.pending_requests.set(self.pending.len() as i64);
        }
        if self.oldest_pending_since.is_none() {
            self.oldest_pending_since = Some(self.now_ms);
        }
    }

    fn was_delivered(&self, id: &(ClientId, u64)) -> bool {
        self.delivered
            .get(&id.0)
            .is_some_and(|set| set.contains(&id.1))
    }

    fn mark_delivered(&mut self, batch: &Batch) {
        for request in &batch.requests {
            let id = request.id();
            self.pending_ids.remove(&id);
            let set = self.delivered.entry(id.0).or_default();
            set.insert(id.1);
            while set.len() > DEDUP_WINDOW {
                let Some(&min) = set.iter().next() else { break };
                set.remove(&min);
            }
        }
        let ids: HashSet<(ClientId, u64)> = batch.requests.iter().map(|r| r.id()).collect();
        self.pending.retain(|r| !ids.contains(&r.id()));
    }

    // ------------------------------------------------------------------
    // Proposing
    // ------------------------------------------------------------------

    /// Fills the window in slot order: the leader opens slot `s + 1`
    /// while slot `s` is still in its WRITE phase, as long as
    /// unproposed requests remain.
    fn try_propose(&mut self, actions: &mut Vec<Action>) {
        if !self.is_leader() || self.syncing {
            return;
        }
        loop {
            let Some(cid) = (self.next_cid..self.window_end())
                .find(|cid| !self.insts.get(cid).is_some_and(|i| i.batch.is_some()))
            else {
                return; // window full
            };
            if self.pending.is_empty() {
                return;
            }
            let batch = self.build_batch();
            if batch.is_empty() {
                return; // everything pending is already in flight
            }
            let msg = ConsensusMsg::Propose {
                cid,
                epoch: self.regency,
                batch,
            };
            actions.push(Action::Broadcast(msg.clone()));
            self.handle(self.cfg.node, msg, actions);
            if cid >= self.next_cid && !self.insts.get(&cid).is_some_and(|i| i.batch.is_some()) {
                return; // own proposal not installed; avoid spinning
            }
        }
    }

    fn build_batch(&self) -> Batch {
        let in_flight = self.in_flight_ids();
        let mut requests = Vec::new();
        let mut bytes = 0usize;
        for request in &self.pending {
            if requests.len() >= self.cfg.batch_max {
                break;
            }
            if in_flight.contains(&request.id()) {
                continue;
            }
            bytes += request.payload.len();
            if !requests.is_empty() && bytes > self.cfg.max_batch_bytes {
                break;
            }
            requests.push(request.clone());
        }
        Batch::new(requests)
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, from: NodeId, msg: ConsensusMsg, actions: &mut Vec<Action>) {
        match msg {
            ConsensusMsg::Propose { cid, epoch, batch } => {
                self.handle_propose(from, cid, epoch, batch, actions)
            }
            ConsensusMsg::Write(vote) => self.handle_write(from, vote, actions),
            ConsensusMsg::Accept(vote) => self.handle_accept(from, vote, actions),
            ConsensusMsg::Stop { regency } => self.handle_stop(from, regency, actions),
            ConsensusMsg::StopData(sd) => self.handle_stop_data(from, sd, actions),
            ConsensusMsg::Sync {
                regency,
                collect,
                cid,
                batch,
                rebinds,
            } => self.handle_sync(from, regency, collect, cid, batch, rebinds, actions),
            ConsensusMsg::Forward { request } => {
                self.enqueue_request(request);
                self.try_propose(actions);
            }
            ConsensusMsg::ValueRequest { cid } => self.handle_value_request(from, cid, actions),
            ConsensusMsg::ValueReply { cid, batch, proof } => {
                self.handle_value_reply(cid, batch, proof, actions)
            }
        }
    }

    /// Buffers a current-instance agreement message that cannot be
    /// processed yet (a synchronization phase is running, or the vote
    /// belongs to a newer epoch we have not installed).
    fn buffer_for_after_sync(&mut self, from: NodeId, msg: ConsensusMsg) {
        if self.sync_buffer.len() < 4 * self.cfg.quorums.n() * 4 {
            self.sync_buffer.push((from, msg));
        }
    }

    /// Replays messages buffered during a synchronization phase.
    fn replay_sync_buffer(&mut self, actions: &mut Vec<Action>) {
        if self.sync_buffer.is_empty() || self.syncing {
            return;
        }
        let buffered = std::mem::take(&mut self.sync_buffer);
        for (from, msg) in buffered {
            self.handle(from, msg, actions);
        }
    }

    /// Buffers a message beyond the live window; triggers value fetch
    /// if enough distinct peers are demonstrably ahead.
    fn buffer_future(&mut self, from: NodeId, msg: ConsensusMsg, cid: u64, actions: &mut Vec<Action>) {
        if cid > self.next_cid + FUTURE_HORIZON {
            return;
        }
        self.future.entry(cid).or_default().push((from, msg));
        self.maybe_fetch_gap(actions);
    }

    /// Starts (or continues) fetching the current instance's decided
    /// value when at least `f + 1` distinct peers are observably ahead
    /// of us — at least one of them is correct and has the decision.
    fn maybe_fetch_gap(&mut self, actions: &mut Vec<Action>) {
        if self.fetching_value {
            return;
        }
        let ahead: HashSet<NodeId> = self
            .future
            .iter()
            .filter(|(&cid, _)| cid > self.next_cid)
            .flat_map(|(_, msgs)| msgs.iter().map(|(n, _)| *n))
            .collect();
        if ahead.len() >= self.cfg.quorums.one_correct_count() {
            self.fetching_value = true;
            self.fetch_started_at = self.now_ms;
            let cid = self.next_cid;
            for node in ahead {
                actions.push(Action::Send(node, ConsensusMsg::ValueRequest { cid }));
            }
        }
    }

    fn drain_future(&mut self, actions: &mut Vec<Action>) {
        // Process buffered messages for every slot the window now
        // admits; commits widen the window further, so loop.
        self.future.retain(|&cid, _| cid >= self.next_cid);
        loop {
            let Some((&cid, _)) = self.future.range(self.next_cid..self.window_end()).next()
            else {
                return;
            };
            let Some(msgs) = self.future.remove(&cid) else {
                return;
            };
            for (from, msg) in msgs {
                self.handle(from, msg, actions);
            }
        }
    }

    // ------------------------------------------------------------------
    // Agreement rounds
    // ------------------------------------------------------------------

    fn handle_propose(
        &mut self,
        from: NodeId,
        cid: u64,
        epoch: u32,
        batch: Batch,
        actions: &mut Vec<Action>,
    ) {
        if cid >= self.window_end() {
            self.buffer_future(from, ConsensusMsg::Propose { cid, epoch, batch }, cid, actions);
            return;
        }
        if cid < self.next_cid {
            return;
        }
        if self.syncing || epoch > self.slot_epoch(cid) {
            self.buffer_for_after_sync(from, ConsensusMsg::Propose { cid, epoch, batch });
            return;
        }
        if epoch != self.regency
            || from != self.leader()
            || self.insts.get(&cid).is_some_and(|i| i.batch.is_some())
        {
            return;
        }
        // Validate the batch: non-empty (normal path), within limits,
        // free of already-delivered requests, and disjoint from every
        // other live slot (a leader must not order a request twice
        // inside the window).
        let in_flight = self.in_flight_ids();
        if batch.is_empty()
            || batch.len() > self.cfg.batch_max
            || batch.payload_bytes() > self.cfg.max_batch_bytes
            || batch.requests.iter().any(|r| {
                let id = r.id();
                self.was_delivered(&id) || in_flight.contains(&id)
            })
        {
            return;
        }
        self.accept_proposal(cid, batch, actions);
    }

    /// Installs a batch as slot `cid`'s proposal and casts our WRITE.
    fn accept_proposal(&mut self, cid: u64, batch: Batch, actions: &mut Vec<Action>) {
        let hash = batch.digest();
        // A conflicting tentative delivery (the slot re-bound to a
        // different value) is undone before the slot re-runs, and every
        // tentative slot above cascades with it.
        if self
            .insts
            .get(&cid)
            .is_some_and(|i| i.tentative.is_some() && i.tentative != Some(hash))
        {
            self.rollback_from(cid, actions);
        }
        let now = self.now_ms;
        let epoch = {
            let slot = self.inst_mut(cid);
            slot.hash = Some(hash);
            slot.batch = Some(batch.clone());
            slot.proposed_at = Some(now);
            slot.epoch
        };
        self.recent_proposed_at.push_back((cid, now));
        if self.recent_proposed_at.len() > 128 {
            self.recent_proposed_at.pop_front();
        }
        if self.flight.is_some() {
            self.flight_record(
                EventKind::Propose,
                cid,
                self.regency as u64,
                batch.len() as u64,
            );
            // Link every transaction in the batch to this instance so
            // the offline merger can attribute consensus phases to
            // individual traces.
            for (pos, request) in batch.requests.iter().enumerate() {
                self.flight_record(
                    EventKind::TxInBatch,
                    hlf_obs::trace_id(request.client.0, request.seq),
                    cid,
                    pos as u64,
                );
            }
        }

        let vote = Vote::sign(
            &self.cfg.signing_key,
            VotePhase::Write,
            self.cfg.node,
            cid,
            epoch,
            hash,
        );
        let slot = self.inst_mut(cid);
        slot.write_sent = true;
        slot.last_write = Some((epoch, hash));
        slot.last_write_value = Some(batch);
        slot.last_write_cert = vec![vote.clone()];
        self.update_window_gauge();

        actions.push(Action::Broadcast(ConsensusMsg::Write(vote.clone())));
        self.record_write(vote, actions);
        // Votes can outrun the proposal: the slot may already hold an
        // accept quorum whose value just became locally known.
        self.try_decide(cid, actions);
    }

    fn handle_write(&mut self, from: NodeId, vote: Vote, actions: &mut Vec<Action>) {
        if vote.cid >= self.window_end() {
            self.buffer_future(from, ConsensusMsg::Write(vote.clone()), vote.cid, actions);
            return;
        }
        if vote.cid < self.next_cid {
            // The instance already closed without this vote — the
            // defining symptom of a straggler. Feed its arrival lag to
            // the health detector before discarding it.
            if vote.phase == VotePhase::Write && vote.node == from {
                self.observe_late_write(from, &vote);
            }
            return;
        }
        if vote.phase != VotePhase::Write || vote.node != from {
            return;
        }
        if self.syncing || vote.epoch > self.slot_epoch(vote.cid) {
            self.buffer_for_after_sync(from, ConsensusMsg::Write(vote));
            return;
        }
        if vote.epoch != self.slot_epoch(vote.cid) {
            return;
        }
        if from != self.cfg.node {
            let Some(key) = self.cfg.keys.get(from.as_usize()) else {
                return;
            };
            if !vote.verify(key) {
                return;
            }
        }
        self.record_ooo_depth(&vote);
        self.record_write(vote, actions);
    }

    /// Records how far above the frontier an accepted vote landed.
    fn record_ooo_depth(&self, vote: &Vote) {
        if vote.cid > self.next_cid {
            if let Some(obs) = &self.obs {
                obs.pipeline_ooo_votes.record(vote.cid - self.next_cid);
            }
        }
    }

    /// Measures a WRITE vote that arrived after its instance decided,
    /// against that instance's recorded propose time. Signatures are
    /// still checked so an attacker cannot smear a healthy peer.
    fn observe_late_write(&mut self, from: NodeId, vote: &Vote) {
        if from == self.cfg.node {
            return;
        }
        let Some(&(_, t0)) = self
            .recent_proposed_at
            .iter()
            .rev()
            .find(|&&(cid, _)| cid == vote.cid)
        else {
            return;
        };
        let Some(key) = self.cfg.keys.get(from.as_usize()) else {
            return;
        };
        if !vote.verify(key) {
            return;
        }
        let lag_us = self.now_ms.saturating_sub(t0) * 1000;
        self.flight_record(EventKind::WriteVote, vote.cid, vote.node.0 as u64, lag_us);
        self.observe_vote_lag(from, lag_us);
    }

    fn record_write(&mut self, vote: Vote, actions: &mut Vec<Action>) {
        let cid = vote.cid;
        if vote.node != self.cfg.node {
            // Attribute the lag to the vote's *own* slot: with several
            // slots live, a vote for an older slot measured against a
            // newer slot's proposal time would smear a healthy peer.
            if let Some(t0) = self.insts.get(&cid).and_then(|i| i.proposed_at) {
                let lag_us = self.now_ms.saturating_sub(t0) * 1000;
                self.flight_record(EventKind::WriteVote, cid, vote.node.0 as u64, lag_us);
                self.observe_vote_lag(vote.node, lag_us);
            }
        }
        let slot = self.inst_mut(cid);
        if !slot.writes.contains(vote.node) {
            slot.writes.insert(vote);
        }
        self.check_write_quorum(cid, actions);
    }

    fn check_write_quorum(&mut self, cid: u64, actions: &mut Vec<Action>) {
        let Some(slot) = self.insts.get(&cid) else {
            return;
        };
        let Some(hash) = slot.hash else {
            return;
        };
        let cert = slot.writes.votes_for(hash);
        if !self.cfg.quorums.is_quorum(cert.iter().map(|v| v.node)) {
            return;
        }
        let epoch = slot.epoch;
        let proposed_at = slot.proposed_at;
        let accept_sent = slot.accept_sent;
        let cert_len = cert.len();
        let cert_signers = signer_bitmap(cert.iter().map(|v| v.node));
        // Snapshot the certificate for a possible STOP-DATA.
        self.inst_mut(cid).last_write_cert = cert;

        if !accept_sent {
            let now = self.now_ms;
            {
                let slot = self.inst_mut(cid);
                slot.accept_sent = true;
                // The WRITE quorum just formed: close the WRITE phase.
                slot.write_quorum_at = Some(now);
            }
            if let Some(obs) = &self.obs {
                if let Some(t0) = proposed_at {
                    obs.write_phase_ms.record(now.saturating_sub(t0));
                }
                obs.write_quorum_votes.record(cert_len as u64);
            }
            self.flight_record(
                EventKind::WriteQuorum,
                cid,
                cert_len as u64,
                proposed_at.map_or(0, |t0| now.saturating_sub(t0) * 1000),
            );
            // Value identity + distinct signers for the cluster auditor's
            // certified-value-preservation and quorum-validity checks.
            self.flight_record(EventKind::WriteCert, cid, digest64(&hash), cert_signers);
            let vote = Vote::sign(
                &self.cfg.signing_key,
                VotePhase::Accept,
                self.cfg.node,
                cid,
                epoch,
                hash,
            );
            actions.push(Action::Broadcast(ConsensusMsg::Accept(vote.clone())));
            self.record_accept(vote, actions);
        }

        self.release_tentatives(actions);
    }

    /// WHEAT tentative deliveries release strictly in slot order: slot
    /// `s` is delivered only once every lower live slot has been. Out
    /// of order tentative execution would corrupt the application's
    /// sequential state.
    fn release_tentatives(&mut self, actions: &mut Vec<Action>) {
        if !self.cfg.tentative_execution {
            return;
        }
        for cid in self.next_cid..self.window_end() {
            let Some(slot) = self.insts.get(&cid) else {
                break;
            };
            if slot.tentative.is_some() {
                continue; // already delivered; keep scanning upward
            }
            if !slot.accept_sent {
                break; // write quorum not formed yet: stop, stay in order
            }
            let (Some(hash), Some(batch)) = (slot.hash, slot.batch.clone()) else {
                break;
            };
            self.inst_mut(cid).tentative = Some(hash);
            if let Some(obs) = &self.obs {
                obs.tentative_deliveries.inc();
            }
            self.flight_record(EventKind::TentativeDeliver, cid, 0, 0);
            self.flight_record(EventKind::TentativeHash, cid, digest64(&hash), 0);
            hlf_obs::trace!(
                "replica {} tentatively delivers cid {}",
                self.cfg.node.as_usize(),
                cid
            );
            actions.push(Action::DeliverTentative { cid, batch });
        }
    }

    fn handle_accept(&mut self, from: NodeId, vote: Vote, actions: &mut Vec<Action>) {
        if vote.cid >= self.window_end() {
            self.buffer_future(from, ConsensusMsg::Accept(vote.clone()), vote.cid, actions);
            return;
        }
        if vote.cid < self.next_cid || vote.phase != VotePhase::Accept || vote.node != from {
            return;
        }
        if self.syncing || vote.epoch > self.slot_epoch(vote.cid) {
            self.buffer_for_after_sync(from, ConsensusMsg::Accept(vote));
            return;
        }
        if vote.epoch != self.slot_epoch(vote.cid) {
            return;
        }
        if from != self.cfg.node {
            let Some(key) = self.cfg.keys.get(from.as_usize()) else {
                return;
            };
            if !vote.verify(key) {
                return;
            }
        }
        self.record_ooo_depth(&vote);
        self.record_accept(vote, actions);
    }

    fn record_accept(&mut self, vote: Vote, actions: &mut Vec<Action>) {
        let cid = vote.cid;
        if vote.node != self.cfg.node {
            // Measure ACCEPT lag from the slot's own WRITE quorum (when
            // known) so both phases contribute ~one-message-delay
            // samples attributed to the right slot.
            let t0 = self
                .insts
                .get(&cid)
                .and_then(|i| i.write_quorum_at.or(i.proposed_at));
            if let Some(t0) = t0 {
                let lag_us = self.now_ms.saturating_sub(t0) * 1000;
                self.flight_record(EventKind::AcceptVote, cid, vote.node.0 as u64, lag_us);
                self.observe_vote_lag(vote.node, lag_us);
            }
        }
        let slot = self.inst_mut(cid);
        if !slot.accepts.contains(vote.node) {
            slot.accepts.insert(vote);
        }
        self.try_decide(cid, actions);
    }

    fn try_decide(&mut self, cid: u64, actions: &mut Vec<Action>) {
        let Some(slot) = self.insts.get(&cid) else {
            return;
        };
        if slot.decided.is_none() {
            // Find a hash with an accept quorum. Usually this is the
            // proposed hash, but a replica that missed the PROPOSE can
            // still learn the decision digest this way.
            let Some(hash) = slot.accepts.quorum_hash(&self.cfg.quorums) else {
                return;
            };
            let proof = DecisionProof {
                cid,
                hash,
                votes: slot.accepts.votes_for(hash),
            };
            match slot.batch.clone() {
                Some(batch) if batch.digest() == hash => {
                    self.inst_mut(cid).decided = Some((batch, proof));
                }
                _ => {
                    // Decided digest known, value missing: fetch once
                    // the slot reaches the frontier (release order is
                    // strict anyway, so nothing above can commit first).
                    if cid == self.next_cid && !self.fetching_value {
                        self.fetching_value = true;
                        self.fetch_started_at = self.now_ms;
                        for node in self.cfg.quorums.nodes() {
                            if node != self.cfg.node {
                                actions.push(Action::Send(node, ConsensusMsg::ValueRequest { cid }));
                            }
                        }
                    }
                    return;
                }
            }
        }
        self.release_decides(actions);
    }

    /// Commits every decided slot from the frontier upward, in order.
    fn release_decides(&mut self, actions: &mut Vec<Action>) {
        if self.syncing {
            return;
        }
        while let Some((batch, proof)) = self
            .insts
            .get(&self.next_cid)
            .and_then(|slot| slot.decided.clone())
        {
            self.commit(batch, proof, actions);
        }
        // The new frontier may hold an accept quorum for a value this
        // replica never saw: re-run its decision check to start the
        // fetch it deferred while it sat above the frontier.
        let frontier = self.next_cid;
        let needs_fetch = self.insts.get(&frontier).is_some_and(|slot| {
            slot.decided.is_none() && slot.accepts.quorum_hash(&self.cfg.quorums).is_some()
        });
        if needs_fetch {
            self.try_decide(frontier, actions);
        }
    }

    fn commit(&mut self, batch: Batch, proof: DecisionProof, actions: &mut Vec<Action>) {
        let cid = self.next_cid;
        let slot = self.insts.remove(&cid);
        let proposed_at = slot.as_ref().and_then(|s| s.proposed_at);
        let write_quorum_at = slot.as_ref().and_then(|s| s.write_quorum_at);
        self.mark_delivered(&batch);
        self.last_decision = Some((cid, batch.clone(), proof.clone()));
        self.recent_decisions.push_back((cid, batch.clone(), proof.clone()));
        while self.recent_decisions.len() > RECENT_DECISIONS {
            self.recent_decisions.pop_front();
        }
        self.metrics.decided_instances += 1;
        self.metrics.delivered_requests += batch.len() as u64;
        if let Some(obs) = &self.obs {
            obs.decided.inc();
            obs.pending_requests.set(self.pending.len() as i64);
            obs.accept_quorum_votes.record(proof.votes.len() as u64);
            if let Some(t0) = write_quorum_at {
                obs.accept_phase_ms.record(self.now_ms.saturating_sub(t0));
            }
            if let Some(t0) = proposed_at {
                obs.decide_ms.record(self.now_ms.saturating_sub(t0));
            }
        }
        self.flight_record(
            EventKind::Decide,
            cid,
            batch.len() as u64,
            proposed_at.map_or(0, |t0| self.now_ms.saturating_sub(t0) * 1000),
        );
        // Decided value + ACCEPT-quorum signer bitmap for the cluster
        // auditor's agreement and quorum-certificate checks.
        self.flight_record(
            EventKind::DecideHash,
            cid,
            digest64(&proof.hash),
            signer_bitmap(proof.votes.iter().map(|v| v.node)),
        );
        hlf_obs::trace!(
            "replica {} decides cid {} ({} requests)",
            self.cfg.node.as_usize(),
            cid,
            batch.len()
        );

        actions.push(Action::Commit { cid, batch, proof });

        // Advance the frontier; higher slots stay live in the window.
        self.next_cid += 1;
        self.frontier_since = self.now_ms;
        self.stall_dumped = false;
        self.fetching_value = false;
        self.timeout_ms = self.cfg.request_timeout_ms;
        self.forwarded = false;
        self.oldest_pending_since = if self.pending.is_empty() {
            None
        } else {
            Some(self.now_ms)
        };
        self.update_window_gauge();

        self.drain_future(actions);
        self.maybe_fetch_gap(actions);
        self.try_propose(actions);
    }

    // ------------------------------------------------------------------
    // Regency change
    // ------------------------------------------------------------------

    fn request_regency_change(&mut self, regency: u32, actions: &mut Vec<Action>) {
        if regency <= self.regency || self.stop_sent_for >= regency {
            return;
        }
        self.stop_sent_for = regency;
        self.timeout_ms = self.timeout_ms.saturating_mul(2);
        actions.push(Action::Broadcast(ConsensusMsg::Stop { regency }));
        self.note_stop_vote(self.cfg.node, regency, actions);
    }

    fn handle_stop(&mut self, from: NodeId, regency: u32, actions: &mut Vec<Action>) {
        if regency <= self.regency || from.as_usize() >= self.cfg.quorums.n() {
            return;
        }
        self.note_stop_vote(from, regency, actions);
    }

    fn note_stop_vote(&mut self, from: NodeId, regency: u32, actions: &mut Vec<Action>) {
        let votes = {
            let set = self.stop_votes.entry(regency).or_default();
            set.insert(from);
            set.len()
        };
        // Amplification: join once f+1 distinct replicas demand the
        // change (at least one of them is correct).
        if votes >= self.cfg.quorums.one_correct_count() && self.stop_sent_for < regency {
            self.stop_sent_for = regency;
            actions.push(Action::Broadcast(ConsensusMsg::Stop { regency }));
            self.note_stop_vote(self.cfg.node, regency, actions);
            return;
        }
        if votes >= self.cfg.quorums.certify_count() && regency > self.regency {
            self.install_regency(regency, actions);
        }
    }

    fn install_regency(&mut self, regency: u32, actions: &mut Vec<Action>) {
        self.regency = regency;
        self.metrics.regency_changes += 1;
        if let Some(obs) = &self.obs {
            obs.regency_changes.inc();
        }
        self.flight_record(
            EventKind::RegencyChange,
            regency as u64,
            self.leader_of(regency).0 as u64,
            0,
        );
        if let Some(flight) = &self.flight {
            // A leader change is the canonical anomaly: snapshot the
            // events that led up to it.
            flight.anomaly_at(self.now_ms * 1000, "regency_change");
        }
        hlf_obs::info!(
            "replica {} installs regency {} (leader {})",
            self.cfg.node.as_usize(),
            regency,
            self.leader_of(regency).as_usize()
        );
        self.syncing = true;
        self.sync_started_at = self.now_ms;
        self.collect.clear();
        self.stop_votes.retain(|&r, _| r > regency);

        let decision = self.last_decision.as_ref().map(|(_, _, proof)| proof.clone());
        let quorums = &self.cfg.quorums;
        let quorum_cert = |slot: &Instance| {
            if quorums.is_quorum(slot.last_write_cert.iter().map(|v| v.node)) {
                slot.last_write_cert.clone()
            } else {
                Vec::new()
            }
        };
        let (last_write, last_write_value, write_cert) = match self.insts.get(&self.next_cid) {
            Some(slot) => (slot.last_write, slot.last_write_value.clone(), quorum_cert(slot)),
            None => (None, None, Vec::new()),
        };
        // Report every live slot above the frontier too: a certified
        // write there binds the new regent to re-propose its value, and
        // even an uncertified report can supply the value bytes behind
        // another replica's certificate.
        let extra_slots: Vec<SlotReport> = self
            .insts
            .range(self.next_cid + 1..)
            .filter(|(_, slot)| slot.last_write.is_some())
            .map(|(&cid, slot)| SlotReport {
                cid,
                last_write: slot.last_write,
                value: slot.last_write_value.clone(),
                write_cert: quorum_cert(slot),
            })
            .collect();
        let sd = StopData::sign_with_slots(
            &self.cfg.signing_key,
            self.cfg.node,
            regency,
            self.next_cid,
            last_write,
            last_write_value,
            write_cert,
            extra_slots,
            decision,
        );

        // Pause every live slot's votes; keep sticky write history.
        for slot in self.insts.values_mut() {
            slot.bump_epoch(regency);
        }

        let leader = self.leader();
        if leader == self.cfg.node {
            self.handle_stop_data(self.cfg.node, sd, actions);
            // Replay STOP-DATA that arrived before we installed this
            // regency.
            let early = std::mem::take(&mut self.early_stopdata);
            for (from, early_sd) in early {
                if early_sd.regency == regency {
                    self.handle_stop_data(from, early_sd, actions);
                } else if early_sd.regency > regency {
                    self.early_stopdata.push((from, early_sd));
                }
            }
        } else {
            actions.push(Action::Send(leader, ConsensusMsg::StopData(sd)));
        }
    }

    fn handle_stop_data(&mut self, from: NodeId, sd: StopData, actions: &mut Vec<Action>) {
        if sd.node != from {
            return;
        }
        // STOP-DATA can outrun the STOP quorum: if it names a regency
        // we have not installed yet and we would lead it, keep it.
        if sd.regency > self.regency && self.leader_of(sd.regency) == self.cfg.node {
            if self.early_stopdata.len() < 4 * self.cfg.quorums.n() {
                self.early_stopdata.push((from, sd));
            }
            return;
        }
        if !self.syncing || sd.regency != self.regency || self.leader() != self.cfg.node {
            return;
        }
        let Some(key) = self.cfg.keys.get(sd.node.as_usize()) else {
            return;
        };
        if !sd.verify_signature(key) {
            return;
        }
        self.collect.entry(sd.node).or_insert(sd);
        if self.collect.len() < self.cfg.quorums.collect_count() {
            return;
        }
        let collect: Vec<StopData> = self.collect.values().cloned().collect();
        let Ok(selection) =
            select_window(&collect, self.regency, &self.cfg.quorums, &self.cfg.keys)
        else {
            return;
        };
        // Re-propose every in-flight slot above the frontier: bound
        // slots verbatim, unbound gaps as empty batches so in-order
        // release can pass them.
        let mut rebinds = Vec::with_capacity(selection.extra.len());
        for (slot_cid, bound) in &selection.extra {
            match bound {
                Some(bound) => match &bound.value {
                    Some(value) => rebinds.push(SlotRebind {
                        cid: *slot_cid,
                        batch: value.clone(),
                    }),
                    // Certified hash without recoverable bytes: wait
                    // for more STOP-DATA or the sync timeout.
                    None => return,
                },
                None => rebinds.push(SlotRebind {
                    cid: *slot_cid,
                    batch: Batch::empty(),
                }),
            }
        }
        let batch = match &selection.bound {
            Some(bound) => match &bound.value {
                Some(batch) => batch.clone(),
                // Bound hash without recoverable bytes: wait for more
                // STOP-DATA (another entry may carry the value) or for
                // the sync timeout to escalate.
                None => return,
            },
            None => {
                // Free choice at the frontier — but never re-order a
                // request that a rebound slot above already carries.
                let mut batch = self.build_batch(); // possibly empty: sync may no-op
                let rebound: HashSet<(ClientId, u64)> = rebinds
                    .iter()
                    .flat_map(|r| r.batch.requests.iter().map(|q| q.id()))
                    .collect();
                if !rebound.is_empty() {
                    batch = Batch::new(
                        batch
                            .requests
                            .iter()
                            .filter(|r| !rebound.contains(&r.id()))
                            .cloned()
                            .collect(),
                    );
                }
                batch
            }
        };
        let msg = ConsensusMsg::Sync {
            regency: self.regency,
            collect,
            cid: selection.cid,
            batch,
            rebinds,
        };
        actions.push(Action::Broadcast(msg.clone()));
        self.handle(self.cfg.node, msg, actions);
    }

    fn handle_sync(
        &mut self,
        from: NodeId,
        regency: u32,
        collect: Vec<StopData>,
        cid: u64,
        batch: Batch,
        rebinds: Vec<SlotRebind>,
        actions: &mut Vec<Action>,
    ) {
        if regency < self.regency || from != self.leader_of(regency) {
            return;
        }
        if validate_sync_window(
            &collect,
            regency,
            cid,
            &batch,
            &rebinds,
            &self.cfg.quorums,
            &self.cfg.keys,
        )
        .is_err()
        {
            return;
        }
        if regency > self.regency {
            // We missed the STOP quorum; the validated collect set is
            // itself evidence that the group moved on.
            self.regency = regency;
            self.metrics.regency_changes += 1;
            if let Some(obs) = &self.obs {
                obs.regency_changes.inc();
            }
            self.flight_record(
                EventKind::RegencyChange,
                regency as u64,
                self.leader_of(regency).0 as u64,
                1,
            );
            if let Some(flight) = &self.flight {
                flight.anomaly_at(self.now_ms * 1000, "regency_change");
            }
            hlf_obs::info!(
                "replica {} adopts regency {} from SYNC",
                self.cfg.node.as_usize(),
                regency
            );
            for slot in self.insts.values_mut() {
                slot.bump_epoch(regency);
            }
            self.stop_votes.retain(|&r, _| r > regency);
        }

        // The synchronization phase is over.
        self.syncing = false;
        self.collect.clear();
        self.sync_started_at = self.now_ms;
        self.forwarded = false;
        if self.oldest_pending_since.is_some() {
            self.oldest_pending_since = Some(self.now_ms);
        }

        match cid.cmp(&self.next_cid) {
            std::cmp::Ordering::Less => {
                // We already decided this instance; nothing to adopt.
            }
            std::cmp::Ordering::Greater => {
                // We are behind: remember the window, ask for state
                // transfer.
                self.pending_sync = Some((regency, cid, batch, rebinds));
                hlf_obs::debug!(
                    "replica {} behind: at cid {} while group syncs cid {}",
                    self.cfg.node.as_usize(),
                    self.next_cid,
                    cid
                );
                actions.push(Action::Behind { target_cid: cid });
            }
            std::cmp::Ordering::Equal => {
                self.adopt_window(cid, batch, rebinds, actions);
            }
        }
        self.replay_sync_buffer(actions);
    }

    /// Adopts a synchronization-phase window: the frontier value plus
    /// every re-proposed in-flight slot above it, ascending. Conflicting
    /// tentative deliveries are rolled back (highest slot first) by
    /// [`Replica::accept_proposal`] as each slot re-binds.
    fn adopt_window(
        &mut self,
        cid: u64,
        batch: Batch,
        rebinds: Vec<SlotRebind>,
        actions: &mut Vec<Action>,
    ) {
        debug_assert_eq!(cid, self.next_cid);
        if !rebinds.is_empty() {
            if let Some(obs) = &self.obs {
                for _ in &rebinds {
                    obs.pipeline_reproposals.inc();
                }
            }
            self.metrics.reproposals += rebinds.len() as u64;
        }
        let mut pairs = Vec::with_capacity(1 + rebinds.len());
        // An empty frontier re-proposal still runs agreement so the
        // group converges on instance numbering.
        pairs.push((cid, batch));
        for rebind in rebinds {
            pairs.push((rebind.cid, rebind.batch));
        }
        for (slot_cid, value) in pairs {
            let regency = self.regency;
            // Audit trail: which value each slot re-binds to under the
            // new regency (certified values must re-appear verbatim).
            self.flight_record(
                EventKind::Rebind,
                slot_cid,
                digest64(&value.digest()),
                regency as u64,
            );
            self.inst_mut(slot_cid).bump_epoch(regency);
            self.accept_proposal(slot_cid, value, actions);
        }
    }

    /// Rolls back every tentative delivery at or above `floor`, highest
    /// slot first, so the application's positional undo snapshots unwind
    /// to the state before `floor` executed.
    fn rollback_from(&mut self, floor: u64, actions: &mut Vec<Action>) {
        let cids: Vec<u64> = self
            .insts
            .range(floor..)
            .filter(|(_, slot)| slot.tentative.is_some())
            .map(|(&cid, _)| cid)
            .collect();
        for &cid in cids.iter().rev() {
            self.inst_mut(cid).tentative = None;
            self.metrics.rollbacks += 1;
            if let Some(obs) = &self.obs {
                obs.rollbacks.inc();
            }
            self.flight_record(EventKind::Rollback, cid, 0, 0);
            hlf_obs::debug!(
                "replica {} rolls back tentative cid {} (window re-bound)",
                self.cfg.node.as_usize(),
                cid
            );
            actions.push(Action::Rollback { cid });
        }
        if !cids.is_empty() {
            if let Some(flight) = &self.flight {
                flight.anomaly_at(self.now_ms * 1000, "rollback");
            }
        }
    }

    // ------------------------------------------------------------------
    // Value transfer
    // ------------------------------------------------------------------

    fn handle_value_request(&mut self, from: NodeId, cid: u64, actions: &mut Vec<Action>) {
        if let Some((_, batch, proof)) = self
            .recent_decisions
            .iter()
            .find(|(decided_cid, _, _)| *decided_cid == cid)
        {
            actions.push(Action::Send(
                from,
                ConsensusMsg::ValueReply {
                    cid,
                    batch: batch.clone(),
                    proof: proof.clone(),
                },
            ));
        }
    }

    fn handle_value_reply(
        &mut self,
        cid: u64,
        batch: Batch,
        proof: DecisionProof,
        actions: &mut Vec<Action>,
    ) {
        if cid != self.next_cid {
            return;
        }
        if proof.cid != cid
            || proof.hash != batch.digest()
            || proof.verify(&self.cfg.quorums, &self.cfg.keys).is_err()
        {
            return;
        }
        // A proven decision: adopt it directly. A conflicting tentative
        // delivery (and every tentative slot stacked above it) unwinds
        // first.
        if self
            .insts
            .get(&cid)
            .is_some_and(|i| i.tentative.is_some() && i.tentative != Some(proof.hash))
        {
            self.rollback_from(cid, actions);
        }
        self.commit(batch, proof, actions);
        self.release_decides(actions);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index doubles as the node id in tests
mod tests {
    use super::*;
    use hlf_wire::Bytes;

    fn make_replicas(n: usize, f: usize) -> Vec<Replica> {
        let signing: Vec<SigningKey> = (0..n)
            .map(|i| SigningKey::from_seed(format!("replica-unit-{i}").as_bytes()))
            .collect();
        let keys: Vec<VerifyingKey> = signing.iter().map(|k| *k.verifying_key()).collect();
        (0..n)
            .map(|i| {
                Replica::new(Config::new(
                    NodeId(i as u32),
                    QuorumSystem::classic(n, f).unwrap(),
                    keys.clone(),
                    signing[i].clone(),
                ))
            })
            .collect()
    }

    fn req(seq: u64) -> Request {
        Request::new(ClientId(9), seq, Bytes::from(vec![seq as u8; 16]))
    }

    #[test]
    fn leader_proposes_on_request() {
        let mut replicas = make_replicas(4, 1);
        let actions = replicas[0].on_request(0, req(1));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Broadcast(ConsensusMsg::Propose { cid: 1, epoch: 0, .. })
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(ConsensusMsg::Write(_)))));
    }

    #[test]
    fn non_leader_does_not_propose() {
        let mut replicas = make_replicas(4, 1);
        let actions = replicas[1].on_request(0, req(1));
        assert!(actions.is_empty());
        assert_eq!(replicas[1].pending_len(), 1);
    }

    #[test]
    fn duplicate_requests_are_deduplicated() {
        let mut replicas = make_replicas(4, 1);
        replicas[1].on_request(0, req(1));
        replicas[1].on_request(0, req(1));
        assert_eq!(replicas[1].pending_len(), 1);
    }

    #[test]
    fn full_happy_path_four_replicas() {
        let mut replicas = make_replicas(4, 1);
        // Every replica gets the request (clients broadcast).
        let mut wire: Vec<(NodeId, ConsensusMsg)> = Vec::new();
        let mut commits = vec![0usize; 4];
        for r in replicas.iter_mut() {
            for action in r.on_request(0, req(1)) {
                if let Action::Broadcast(msg) = action {
                    wire.push((r.node(), msg));
                }
            }
        }
        // Deliver messages until quiescence.
        while let Some((from, msg)) = wire.pop() {
            for i in 0..4 {
                if NodeId(i as u32) == from {
                    continue;
                }
                for action in replicas[i].on_message(0, from, msg.clone()) {
                    match action {
                        Action::Broadcast(m) => wire.push((NodeId(i as u32), m)),
                        Action::Send(to, m) => {
                            let j = to.as_usize();
                            for a2 in replicas[j].on_message(0, NodeId(i as u32), m) {
                                if let Action::Broadcast(m2) = a2 {
                                    wire.push((NodeId(j as u32), m2));
                                }
                            }
                        }
                        Action::Commit { cid, batch, .. } => {
                            assert_eq!(cid, 1);
                            assert_eq!(batch.len(), 1);
                            commits[i] += 1;
                        }
                        other => panic!("unexpected action {other:?}"),
                    }
                }
            }
        }
        // The three non-self-delivering replicas commit; the leader also
        // commits through its own broadcast loop above.
        let total: usize = commits.iter().sum();
        assert!(total >= 3, "commits: {commits:?}");
        for r in &replicas {
            if r.metrics().decided_instances > 0 {
                assert_eq!(r.next_cid(), 2);
            }
        }
    }

    #[test]
    fn write_votes_with_wrong_epoch_ignored() {
        let mut replicas = make_replicas(4, 1);
        let signing = SigningKey::from_seed(b"replica-unit-1");
        let vote = Vote::sign(
            &signing,
            VotePhase::Write,
            NodeId(1),
            1,
            5, // wrong epoch: regency is 0
            Batch::empty().digest(),
        );
        let actions = replicas[0].on_message(0, NodeId(1), ConsensusMsg::Write(vote));
        assert!(actions.is_empty());
    }

    #[test]
    fn forged_vote_signature_rejected() {
        let mut replicas = make_replicas(4, 1);
        let wrong_key = SigningKey::from_seed(b"attacker");
        let vote = Vote::sign(
            &wrong_key,
            VotePhase::Write,
            NodeId(1),
            1,
            0,
            Batch::empty().digest(),
        );
        let actions = replicas[0].on_message(0, NodeId(1), ConsensusMsg::Write(vote));
        assert!(actions.is_empty());
    }

    #[test]
    fn vote_relayed_by_wrong_sender_rejected() {
        let mut replicas = make_replicas(4, 1);
        let signing = SigningKey::from_seed(b"replica-unit-1");
        let vote = Vote::sign(
            &signing,
            VotePhase::Write,
            NodeId(1),
            1,
            0,
            Batch::empty().digest(),
        );
        // Node 2 replays node 1's vote: `vote.node != from`.
        let actions = replicas[0].on_message(0, NodeId(2), ConsensusMsg::Write(vote));
        assert!(actions.is_empty());
    }

    #[test]
    fn timeout_escalates_to_stop() {
        let mut replicas = make_replicas(4, 1);
        // Node 1 (not leader) has a pending request that never decides.
        replicas[1].on_request(0, req(1));
        // Stage 1 at t > timeout: forward to leader.
        let actions = replicas[1].on_tick(2_500);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(NodeId(0), ConsensusMsg::Forward { .. }))));
        // Stage 2 at t > 2*timeout: STOP for regency 1.
        let actions = replicas[1].on_tick(4_500);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast(ConsensusMsg::Stop { regency: 1 }))));
    }

    #[test]
    fn f_plus_one_stops_amplify() {
        let mut replicas = make_replicas(4, 1);
        // Two other replicas demand regency 1; we join without our own
        // timeout having fired.
        let a1 = replicas[3].on_message(0, NodeId(1), ConsensusMsg::Stop { regency: 1 });
        assert!(a1.is_empty());
        let a2 = replicas[3].on_message(0, NodeId(2), ConsensusMsg::Stop { regency: 1 });
        assert!(a2
            .iter()
            .any(|a| matches!(a, Action::Broadcast(ConsensusMsg::Stop { regency: 1 }))));
        // Own vote makes three: the regency installs and STOP-DATA goes
        // to the new leader (node 1).
        assert_eq!(replicas[3].regency(), 1);
        assert!(replicas[3].is_syncing());
        assert!(a2
            .iter()
            .any(|a| matches!(a, Action::Send(NodeId(1), ConsensusMsg::StopData(_)))));
    }

    #[test]
    fn stale_stop_ignored() {
        let mut replicas = make_replicas(4, 1);
        let actions = replicas[0].on_message(0, NodeId(1), ConsensusMsg::Stop { regency: 0 });
        assert!(actions.is_empty());
    }

    #[test]
    fn value_request_answered_from_recent_decisions() {
        let mut replicas = make_replicas(4, 1);
        // Manufacture a decision on replica 0 via the full path: use 3
        // replicas' accept votes.
        let signing: Vec<SigningKey> = (0..4)
            .map(|i| SigningKey::from_seed(format!("replica-unit-{i}").as_bytes()))
            .collect();
        let batch = Batch::new(vec![req(1)]);
        let hash = batch.digest();
        replicas[0].on_request(0, req(1)); // leader proposes; own write recorded
        for i in 1..3 {
            let w = Vote::sign(&signing[i], VotePhase::Write, NodeId(i as u32), 1, 0, hash);
            replicas[0].on_message(0, NodeId(i as u32), ConsensusMsg::Write(w));
        }
        for i in 1..3 {
            let a = Vote::sign(&signing[i], VotePhase::Accept, NodeId(i as u32), 1, 0, hash);
            replicas[0].on_message(0, NodeId(i as u32), ConsensusMsg::Accept(a));
        }
        assert_eq!(replicas[0].metrics().decided_instances, 1);

        let actions = replicas[0].on_message(0, NodeId(3), ConsensusMsg::ValueRequest { cid: 1 });
        assert!(matches!(
            &actions[..],
            [Action::Send(NodeId(3), ConsensusMsg::ValueReply { cid: 1, .. })]
        ));

        // And a verified ValueReply lets a lagging replica commit
        // directly.
        let Action::Send(_, reply) = actions.into_iter().next().unwrap() else {
            unreachable!()
        };
        let actions = replicas[3].on_message(0, NodeId(0), reply);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Commit { cid: 1, .. })));
        assert_eq!(replicas[3].next_cid(), 2);
    }

    #[test]
    fn bogus_value_reply_rejected() {
        let mut replicas = make_replicas(4, 1);
        let batch = Batch::new(vec![req(1)]);
        let forged = DecisionProof {
            cid: 1,
            hash: batch.digest(),
            votes: vec![],
        };
        let actions = replicas[3].on_message(
            0,
            NodeId(0),
            ConsensusMsg::ValueReply {
                cid: 1,
                batch,
                proof: forged,
            },
        );
        assert!(actions.is_empty());
        assert_eq!(replicas[3].next_cid(), 1);
    }

    #[test]
    fn batch_respects_limits() {
        let mut replicas = make_replicas(4, 1);
        // More requests than batch_max: proposal caps at batch_max.
        for seq in 0..500 {
            replicas[0].enqueue_request(req(seq));
        }
        let batch = replicas[0].build_batch();
        assert_eq!(batch.len(), 400);
    }

    #[test]
    fn byzantine_leader_equivocation_cannot_decide_two_values() {
        // The leader sends different batches to different replicas. With
        // n = 4, each faction has at most 2 write votes for its hash —
        // below the quorum of 3 — so neither value can be decided.
        let mut replicas = make_replicas(4, 1);
        let signing: Vec<SigningKey> = (0..4)
            .map(|i| SigningKey::from_seed(format!("replica-unit-{i}").as_bytes()))
            .collect();
        let batch_a = Batch::new(vec![req(1)]);
        let batch_b = Batch::new(vec![req(2)]);

        // Replicas 1 and 2 get batch A; replica 3 gets batch B.
        for i in [1usize, 2] {
            replicas[i].on_message(
                0,
                NodeId(0),
                ConsensusMsg::Propose {
                    cid: 1,
                    epoch: 0,
                    batch: batch_a.clone(),
                },
            );
        }
        replicas[3].on_message(
            0,
            NodeId(0),
            ConsensusMsg::Propose {
                cid: 1,
                epoch: 0,
                batch: batch_b.clone(),
            },
        );

        // Exchange all write votes among 1, 2, 3 (leader stays silent).
        let votes: Vec<Vote> = vec![
            Vote::sign(&signing[1], VotePhase::Write, NodeId(1), 1, 0, batch_a.digest()),
            Vote::sign(&signing[2], VotePhase::Write, NodeId(2), 1, 0, batch_a.digest()),
            Vote::sign(&signing[3], VotePhase::Write, NodeId(3), 1, 0, batch_b.digest()),
        ];
        for i in 1..4usize {
            for vote in &votes {
                if vote.node.as_usize() != i {
                    let actions = replicas[i].on_message(
                        0,
                        vote.node,
                        ConsensusMsg::Write(vote.clone()),
                    );
                    // No replica may reach an accept quorum.
                    assert!(!actions
                        .iter()
                        .any(|a| matches!(a, Action::Commit { .. })));
                }
            }
        }
        for r in &replicas {
            assert_eq!(r.metrics().decided_instances, 0);
        }
    }

    #[test]
    fn obs_records_phase_latencies_and_counters() {
        use crate::testing::Cluster;

        let mut cluster = Cluster::classic(4, 1);
        let registry = hlf_obs::Registry::new("obs-replica-test");
        for i in 0..4 {
            cluster.replica_mut(i).attach_obs(ReplicaObs::new(&registry));
        }
        for seq in 1..=5 {
            cluster.submit_to_all(Request::new(ClientId(3), seq, &b"tx"[..]));
            cluster.run_to_quiescence();
        }

        let snap = registry.snapshot();
        // All four replicas decided 5 instances each.
        assert_eq!(snap.counter_value("consensus.replica.decided"), Some(20));
        let write = snap.histogram("consensus.replica.write_phase_ms").unwrap();
        let accept = snap.histogram("consensus.replica.accept_phase_ms").unwrap();
        let decide = snap.histogram("consensus.replica.decide_ms").unwrap();
        assert_eq!(write.count, 20);
        assert_eq!(accept.count, 20);
        assert_eq!(decide.count, 20);
        // The write quorum needed at least 3 of 4 matching votes.
        let votes = snap
            .histogram("consensus.replica.write_quorum_votes")
            .unwrap();
        assert!(votes.buckets.first().unwrap().0 >= 3);
        // Proof quorums too.
        let proof_votes = snap
            .histogram("consensus.replica.accept_quorum_votes")
            .unwrap();
        assert!(proof_votes.buckets.first().unwrap().0 >= 3);
        // Everything drained.
        assert_eq!(
            snap.gauge_value("consensus.replica.pending_requests"),
            Some(0)
        );
        assert_eq!(snap.counter_value("consensus.replica.rollbacks"), Some(0));
    }

    #[test]
    fn obs_counts_tentative_deliveries() {
        use crate::testing::Cluster;

        let mut cluster = Cluster::wheat(5, 1);
        let registry = hlf_obs::Registry::new("obs-wheat-test");
        for i in 0..5 {
            cluster.replica_mut(i).attach_obs(ReplicaObs::new(&registry));
        }
        cluster.submit_to_all(Request::new(ClientId(4), 1, &b"tx"[..]));
        cluster.run_to_quiescence();

        let snap = registry.snapshot();
        let tentative = snap
            .counter_value("consensus.replica.tentative_deliveries")
            .unwrap();
        // Every replica that reached the write quorum delivered
        // tentatively before deciding.
        assert!(tentative >= 1, "no tentative deliveries recorded");
        assert_eq!(snap.counter_value("consensus.replica.decided"), Some(5));
    }

    /// Acceptance criterion: an induced regency change auto-dumps the
    /// flight recorder, and the dump contains the protocol events that
    /// led up to the change.
    #[test]
    fn flight_recorder_dumps_on_regency_change() {
        let mut replicas = make_replicas(4, 1);
        let flight = Arc::new(FlightRecorder::with_capacity("node-3", 256));
        replicas[3].attach_flight(Arc::clone(&flight));

        // Normal traffic first so the ring holds pre-anomaly history:
        // the leader's PROPOSE reaches replica 3.
        let batch = Batch::new(vec![req(1)]);
        replicas[3].on_message(
            0,
            NodeId(0),
            ConsensusMsg::Propose {
                cid: 1,
                epoch: 0,
                batch: batch.clone(),
            },
        );

        // Two peers demand regency 1; with our amplified STOP that is a
        // certify quorum, so the regency installs.
        replicas[3].on_message(10, NodeId(1), ConsensusMsg::Stop { regency: 1 });
        replicas[3].on_message(20, NodeId(2), ConsensusMsg::Stop { regency: 1 });
        assert_eq!(replicas[3].regency(), 1);

        let dumps = flight.take_dumps();
        assert_eq!(dumps.len(), 1, "regency change must dump exactly once");
        let dump = &dumps[0];
        assert_eq!(dump.reason, "regency_change");
        assert_eq!(dump.node, "node-3");
        // The dump holds the history: the PROPOSE/WRITE activity before
        // the change, and the change itself.
        let kinds: Vec<EventKind> = dump.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Propose), "missing pre-anomaly propose");
        assert!(kinds.contains(&EventKind::TxInBatch), "missing tx link event");
        assert!(
            kinds.contains(&EventKind::RegencyChange),
            "missing the regency change itself"
        );
        // And it replays through the stable JSON codec byte-identically.
        let json = dump.to_json();
        let back = hlf_obs::FlightDump::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
    }

    /// A persistently slow peer is flagged by the vote-arrival health
    /// detector, surfaced through metrics and the flight recorder.
    #[test]
    fn straggler_detector_flags_slow_peer() {
        let signing: Vec<SigningKey> = (0..4)
            .map(|i| SigningKey::from_seed(format!("replica-unit-{i}").as_bytes()))
            .collect();
        let registry = hlf_obs::Registry::new("health-test");
        // Drive the leader (replica 0) by hand: peers 1 and 2 vote
        // ~10 ms after each PROPOSE, peer 3 consistently ~150 ms late —
        // a straggler whose WRITE still lands before the quorum closes.
        let mut replica = make_replicas(4, 1).remove(0);
        let flight = Arc::new(FlightRecorder::with_capacity("node-0", 4096));
        replica.attach_flight(Arc::clone(&flight));
        replica.attach_health_obs(HealthObs::new(&registry, 4));
        let mut now = 0u64;
        for round in 1..=30u64 {
            let request = req(round);
            let batch = Batch::new(vec![request.clone()]);
            let hash = batch.digest();
            replica.on_request(now, request);
            // WRITE phase: fast peers at +10ms, slow peer at +150ms.
            let w1 = Vote::sign(&signing[1], VotePhase::Write, NodeId(1), round, 0, hash);
            replica.on_message(now + 10, NodeId(1), ConsensusMsg::Write(w1));
            let w3 = Vote::sign(&signing[3], VotePhase::Write, NodeId(3), round, 0, hash);
            replica.on_message(now + 150, NodeId(3), ConsensusMsg::Write(w3));
            // ACCEPT phase: the quorum needs 3 matching votes; feed the
            // slow peer last so its lag is sampled first.
            let a1 = Vote::sign(&signing[1], VotePhase::Accept, NodeId(1), round, 0, hash);
            replica.on_message(now + 160, NodeId(1), ConsensusMsg::Accept(a1));
            let a2 = Vote::sign(&signing[2], VotePhase::Accept, NodeId(2), round, 0, hash);
            replica.on_message(now + 160, NodeId(2), ConsensusMsg::Accept(a2));
            now += 1_000;
        }

        assert!(
            replica.health().is_suspected(3),
            "slow peer not suspected: lags {:?}",
            (0..4).map(|i| replica.health().peer_lag_us(i)).collect::<Vec<_>>()
        );
        assert_eq!(replica.health().suspected_peers(), vec![3]);
        let snap = registry.snapshot();
        assert!(snap.counter_value("consensus.health.suspicions").unwrap() >= 1);
        assert!(snap.gauge_value("consensus.health.peer_lag_us.3").unwrap() > 100_000);
        assert!(
            flight.events().iter().any(|e| e.kind == EventKind::Suspect && e.a == 3),
            "suspicion not recorded in flight ring"
        );
    }

    fn make_leader_with_depth(depth: usize) -> (Replica, Vec<SigningKey>) {
        let signing: Vec<SigningKey> = (0..4)
            .map(|i| SigningKey::from_seed(format!("replica-unit-{i}").as_bytes()))
            .collect();
        let keys: Vec<VerifyingKey> = signing.iter().map(|k| *k.verifying_key()).collect();
        let leader = Replica::new(
            Config::new(
                NodeId(0),
                QuorumSystem::classic(4, 1).unwrap(),
                keys,
                signing[0].clone(),
            )
            .with_pipeline_depth(depth),
        );
        (leader, signing)
    }

    #[test]
    fn pipelined_leader_keeps_window_full() {
        let (mut leader, signing) = make_leader_with_depth(4);
        let mut actions = Vec::new();
        for seq in 1..=5 {
            actions.extend(leader.on_request(0, req(seq)));
        }
        let mut proposed = std::collections::BTreeMap::new();
        for action in &actions {
            if let Action::Broadcast(ConsensusMsg::Propose { cid, batch, .. }) = action {
                proposed.insert(*cid, batch.digest());
            }
        }
        // Four slots open immediately; the fifth request waits for the
        // window to slide.
        assert_eq!(proposed.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(leader.window_occupancy(), 4);
        assert_eq!(leader.pending_len(), 5);

        // Decide the frontier slot: the window slides and the waiting
        // request is proposed into the freed slot.
        let hash = proposed[&1];
        for peer in [1usize, 2] {
            let w = Vote::sign(&signing[peer], VotePhase::Write, NodeId(peer as u32), 1, 0, hash);
            leader.on_message(10, NodeId(peer as u32), ConsensusMsg::Write(w));
        }
        let a1 = Vote::sign(&signing[1], VotePhase::Accept, NodeId(1), 1, 0, hash);
        leader.on_message(20, NodeId(1), ConsensusMsg::Accept(a1));
        let a2 = Vote::sign(&signing[2], VotePhase::Accept, NodeId(2), 1, 0, hash);
        let decide = leader.on_message(20, NodeId(2), ConsensusMsg::Accept(a2));
        assert!(decide.iter().any(|a| matches!(a, Action::Commit { cid: 1, .. })));
        assert!(decide.iter().any(|a| matches!(
            a,
            Action::Broadcast(ConsensusMsg::Propose { cid: 5, .. })
        )));
        assert_eq!(leader.window_occupancy(), 4);
        assert_eq!(leader.pending_len(), 4);
    }

    #[test]
    fn straggler_attribution_uses_per_slot_proposal_time() {
        // With two slots in flight, a vote for the *younger* slot must
        // be measured against that slot's own proposal time. Here the
        // vote lands 600 ms after slot 1 opened but only 100 ms after
        // slot 2 did — the peer's lag is 100 ms, not 600 ms.
        let (mut leader, signing) = make_leader_with_depth(2);
        leader.on_request(0, req(1));
        let slot2 = leader.on_request(500, req(2));
        let hash2 = slot2
            .iter()
            .find_map(|a| match a {
                Action::Broadcast(ConsensusMsg::Propose { cid: 2, batch, .. }) => {
                    Some(batch.digest())
                }
                _ => None,
            })
            .expect("slot 2 proposed");
        let w = Vote::sign(&signing[3], VotePhase::Write, NodeId(3), 2, 0, hash2);
        leader.on_message(600, NodeId(3), ConsensusMsg::Write(w));
        let lag = leader.health().peer_lag_us(3).expect("lag sample recorded");
        assert!(
            lag <= 150_000,
            "vote lag attributed to the wrong slot: {lag}µs (expected ~100,000µs)"
        );
        assert!(lag >= 50_000, "lag sample lost: {lag}µs");
    }
}
