//! Protocol messages for Mod-SMaRt consensus.
//!
//! WRITE and ACCEPT votes are individually signed. Per-message ECDSA
//! would be prohibitive in a per-request protocol, but Mod-SMaRt votes
//! are per *batch* (up to hundreds of requests), so the cost is noise —
//! and signed votes is what makes the synchronization phase's collected
//! certificates transferable and Byzantine-safe.

use crate::ConsensusError;
use hlf_wire::Bytes;
use hlf_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use hlf_crypto::sha256::{sha256, Hash256};
use hlf_wire::{decode_seq, encode_seq, seq_encoded_len, Decode, Encode, Reader, WireError};
use hlf_wire::{ClientId, NodeId};

/// A client request: the unit the ordering service totally orders
/// (an opaque Fabric envelope, from consensus's point of view).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// Issuing client (a frontend in the ordering service).
    pub client: ClientId,
    /// Client-local sequence number, used for deduplication and reply
    /// matching.
    pub seq: u64,
    /// Opaque payload.
    pub payload: Bytes,
}

impl Request {
    /// Creates a request.
    pub fn new(client: ClientId, seq: u64, payload: impl Into<Bytes>) -> Request {
        Request {
            client,
            seq,
            payload: payload.into(),
        }
    }

    /// The request's deduplication identity.
    pub fn id(&self) -> (ClientId, u64) {
        (self.client, self.seq)
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        4 + 8 + 4 + self.payload.len()
    }
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
        self.payload.encode(out);
    }

    fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.payload.len()
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Request {
            client: Decode::decode(r)?,
            seq: Decode::decode(r)?,
            payload: Decode::decode(r)?,
        })
    }
}

/// An ordered batch of requests — the value one consensus instance
/// decides.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Batch {
    /// The requests, in proposal order.
    pub requests: Vec<Request>,
}

impl Batch {
    /// Creates a batch from requests.
    pub fn new(requests: Vec<Request>) -> Batch {
        Batch { requests }
    }

    /// An empty batch (used by the synchronization phase to conclude an
    /// instance when no value is bound and no requests are pending).
    pub fn empty() -> Batch {
        Batch::default()
    }

    /// Returns `true` if the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Canonical digest of the batch (what WRITE/ACCEPT votes refer to).
    pub fn digest(&self) -> Hash256 {
        let mut bytes = Vec::with_capacity(64 * self.requests.len() + 16);
        bytes.extend_from_slice(b"hlfbft/batch/v1");
        encode_seq(&self.requests, &mut bytes);
        sha256(&bytes)
    }

    /// Total payload bytes across requests.
    pub fn payload_bytes(&self) -> usize {
        self.requests.iter().map(|r| r.payload.len()).sum()
    }
}

impl Encode for Batch {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.requests, out);
    }

    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.requests)
    }
}

impl Decode for Batch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Batch {
            requests: decode_seq(r)?,
        })
    }
}

/// The phase a signed vote belongs to (domain separation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VotePhase {
    /// WRITE phase (second round of the message pattern).
    Write,
    /// ACCEPT phase (third round).
    Accept,
}

impl VotePhase {
    fn domain(&self) -> &'static [u8] {
        match self {
            VotePhase::Write => b"hlfbft/write-vote/v1",
            VotePhase::Accept => b"hlfbft/accept-vote/v1",
        }
    }
}

/// A signed consensus vote: "node `node` voted for batch hash `hash` in
/// instance `cid`, epoch `epoch`, phase `phase`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vote {
    /// Consensus instance.
    pub cid: u64,
    /// Epoch within the instance (equal to the regency it ran under).
    pub epoch: u32,
    /// Digest of the batch voted for.
    pub hash: Hash256,
    /// Voting replica.
    pub node: NodeId,
    /// Phase of the vote.
    pub phase: VotePhase,
    /// ECDSA signature over the above.
    pub signature: Signature,
}

impl Vote {
    fn signing_digest(
        phase: VotePhase,
        cid: u64,
        epoch: u32,
        hash: &Hash256,
        node: NodeId,
    ) -> Hash256 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(phase.domain());
        cid.encode(&mut bytes);
        epoch.encode(&mut bytes);
        hash.encode(&mut bytes);
        node.encode(&mut bytes);
        sha256(&bytes)
    }

    /// Creates and signs a vote.
    pub fn sign(
        key: &SigningKey,
        phase: VotePhase,
        node: NodeId,
        cid: u64,
        epoch: u32,
        hash: Hash256,
    ) -> Vote {
        let digest = Vote::signing_digest(phase, cid, epoch, &hash, node);
        Vote {
            cid,
            epoch,
            hash,
            node,
            phase,
            signature: key.sign_digest(&digest),
        }
    }

    /// Verifies the vote against the claimed node's public key.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        let digest = Vote::signing_digest(self.phase, self.cid, self.epoch, &self.hash, self.node);
        key.verify_digest(&digest, &self.signature).is_ok()
    }
}

impl Encode for Vote {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cid.encode(out);
        self.epoch.encode(out);
        self.hash.encode(out);
        self.node.encode(out);
        out.push(match self.phase {
            VotePhase::Write => 0,
            VotePhase::Accept => 1,
        });
        self.signature.encode(out);
    }

    fn encoded_len(&self) -> usize {
        8 + 4 + 32 + 4 + 1 + 64
    }
}

impl Decode for Vote {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Vote {
            cid: Decode::decode(r)?,
            epoch: Decode::decode(r)?,
            hash: Decode::decode(r)?,
            node: Decode::decode(r)?,
            phase: match u8::decode(r)? {
                0 => VotePhase::Write,
                1 => VotePhase::Accept,
                d => return Err(WireError::InvalidDiscriminant(d)),
            },
            signature: Decode::decode(r)?,
        })
    }
}

/// A quorum of signed ACCEPT votes proving that instance `cid` decided
/// the batch with digest `hash`.
///
/// Decision proofs make decisions transferable: a replica that was
/// offline can accept a decided batch from a single peer as long as the
/// proof checks out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionProof {
    /// The decided instance.
    pub cid: u64,
    /// Digest of the decided batch.
    pub hash: Hash256,
    /// Quorum of ACCEPT votes for `(cid, hash)`.
    pub votes: Vec<Vote>,
}

impl DecisionProof {
    /// Verifies the proof: distinct signers, correct phase/cid/hash,
    /// valid signatures, and quorum weight per `quorums`.
    pub fn verify(
        &self,
        quorums: &crate::quorum::QuorumSystem,
        keys: &[VerifyingKey],
    ) -> Result<(), ConsensusError> {
        let mut seen = std::collections::HashSet::new();
        let mut epoch: Option<u32> = None;
        for vote in &self.votes {
            if vote.phase != VotePhase::Accept
                || vote.cid != self.cid
                || vote.hash != self.hash
            {
                return Err(ConsensusError::InvalidProof("vote fields mismatch"));
            }
            if *epoch.get_or_insert(vote.epoch) != vote.epoch {
                return Err(ConsensusError::InvalidProof("mixed epochs"));
            }
            if !seen.insert(vote.node) {
                return Err(ConsensusError::InvalidProof("duplicate voter"));
            }
            let key = keys
                .get(vote.node.as_usize())
                .ok_or(ConsensusError::InvalidProof("unknown voter"))?;
            if !vote.verify(key) {
                return Err(ConsensusError::InvalidProof("bad signature"));
            }
        }
        if !quorums.is_quorum(seen.iter().copied()) {
            return Err(ConsensusError::InvalidProof("not a quorum"));
        }
        Ok(())
    }
}

impl Encode for DecisionProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cid.encode(out);
        self.hash.encode(out);
        encode_seq(&self.votes, out);
    }

    fn encoded_len(&self) -> usize {
        8 + 32 + seq_encoded_len(&self.votes)
    }
}

impl Decode for DecisionProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DecisionProof {
            cid: Decode::decode(r)?,
            hash: Decode::decode(r)?,
            votes: decode_seq(r)?,
        })
    }
}

/// One in-flight slot *above* the sender's frontier in a pipelined
/// window: the slot id plus the sender's WRITE state for it, reported
/// inside [`StopData`] so the new regent can re-bind every live slot
/// (an ACCEPT quorum may exist for a slot whose predecessors are still
/// undecided — dropping such a slot's certificate would fork).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotReport {
    /// The in-flight consensus instance being reported.
    pub cid: u64,
    /// `(epoch, hash)` of the sender's most recent WRITE vote for `cid`.
    pub last_write: Option<(u32, Hash256)>,
    /// The batch behind `last_write`, if known.
    pub value: Option<Batch>,
    /// WRITE votes collected for `last_write` (a certificate when they
    /// reach quorum weight).
    pub write_cert: Vec<Vote>,
}

impl SlotReport {
    /// Folds this report into a signing preimage (values are hashed,
    /// not embedded, exactly like the frontier value in [`StopData`]).
    fn fold_digest(&self, bytes: &mut Vec<u8>) {
        self.cid.encode(bytes);
        self.last_write.encode(bytes);
        match &self.value {
            None => bytes.push(0),
            Some(batch) => {
                bytes.push(1);
                batch.digest().encode(bytes);
            }
        }
        encode_seq(&self.write_cert, bytes);
    }
}

impl Encode for SlotReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cid.encode(out);
        self.last_write.encode(out);
        self.value.encode(out);
        encode_seq(&self.write_cert, out);
    }

    fn encoded_len(&self) -> usize {
        8 + self.last_write.encoded_len()
            + self.value.encoded_len()
            + seq_encoded_len(&self.write_cert)
    }
}

impl Decode for SlotReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SlotReport {
            cid: Decode::decode(r)?,
            last_write: Decode::decode(r)?,
            value: Decode::decode(r)?,
            write_cert: decode_seq(r)?,
        })
    }
}

/// A replica's signed contribution to the synchronization phase: its
/// view of the current instance when regency `regency` was installed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StopData {
    /// The regency being installed.
    pub regency: u32,
    /// The sender's current (undecided) consensus instance — the
    /// frontier of its pipelined window.
    pub cid: u64,
    /// `(epoch, hash)` of the sender's most recent WRITE vote for `cid`,
    /// if it cast one.
    pub last_write: Option<(u32, Hash256)>,
    /// The batch behind `last_write`, if known.
    pub value: Option<Batch>,
    /// WRITE votes collected for `last_write` (a certificate when they
    /// reach quorum weight).
    pub write_cert: Vec<Vote>,
    /// In-flight slots above `cid` (pipelined window), in ascending slot
    /// order. Empty whenever the window depth is 1.
    pub extra_slots: Vec<SlotReport>,
    /// Proof of the sender's most recent decision (`cid - 1`), when it
    /// has decided anything.
    pub decision: Option<DecisionProof>,
    /// Sender.
    pub node: NodeId,
    /// Signature over all preceding fields.
    pub signature: Signature,
}

impl StopData {
    #[allow(clippy::too_many_arguments)]
    fn signing_digest(
        regency: u32,
        cid: u64,
        last_write: &Option<(u32, Hash256)>,
        value: &Option<Batch>,
        write_cert: &[Vote],
        extra_slots: &[SlotReport],
        decision: &Option<DecisionProof>,
        node: NodeId,
    ) -> Hash256 {
        let mut bytes = Vec::with_capacity(256);
        bytes.extend_from_slice(b"hlfbft/stop-data/v2");
        regency.encode(&mut bytes);
        cid.encode(&mut bytes);
        last_write.encode(&mut bytes);
        // Hash the value rather than embedding it, keeping the signed
        // blob small.
        match value {
            None => bytes.push(0),
            Some(batch) => {
                bytes.push(1);
                batch.digest().encode(&mut bytes);
            }
        }
        encode_seq(write_cert, &mut bytes);
        (extra_slots.len() as u32).encode(&mut bytes);
        for report in extra_slots {
            report.fold_digest(&mut bytes);
        }
        decision.encode(&mut bytes);
        node.encode(&mut bytes);
        sha256(&bytes)
    }

    /// Builds and signs a stop-data record with an empty window report
    /// (the window-depth-1 case).
    #[allow(clippy::too_many_arguments)]
    pub fn sign(
        key: &SigningKey,
        node: NodeId,
        regency: u32,
        cid: u64,
        last_write: Option<(u32, Hash256)>,
        value: Option<Batch>,
        write_cert: Vec<Vote>,
        decision: Option<DecisionProof>,
    ) -> StopData {
        StopData::sign_with_slots(
            key, node, regency, cid, last_write, value, write_cert, vec![], decision,
        )
    }

    /// Builds and signs a stop-data record carrying per-slot reports for
    /// in-flight slots above the frontier.
    #[allow(clippy::too_many_arguments)]
    pub fn sign_with_slots(
        key: &SigningKey,
        node: NodeId,
        regency: u32,
        cid: u64,
        last_write: Option<(u32, Hash256)>,
        value: Option<Batch>,
        write_cert: Vec<Vote>,
        extra_slots: Vec<SlotReport>,
        decision: Option<DecisionProof>,
    ) -> StopData {
        let digest = StopData::signing_digest(
            regency,
            cid,
            &last_write,
            &value,
            &write_cert,
            &extra_slots,
            &decision,
            node,
        );
        StopData {
            regency,
            cid,
            last_write,
            value,
            write_cert,
            extra_slots,
            decision,
            node,
            signature: key.sign_digest(&digest),
        }
    }

    /// Verifies the sender's signature (not the embedded certificates;
    /// the selection function checks those separately).
    pub fn verify_signature(&self, key: &VerifyingKey) -> bool {
        let digest = StopData::signing_digest(
            self.regency,
            self.cid,
            &self.last_write,
            &self.value,
            &self.write_cert,
            &self.extra_slots,
            &self.decision,
            self.node,
        );
        key.verify_digest(&digest, &self.signature).is_ok()
    }
}

impl Encode for StopData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.regency.encode(out);
        self.cid.encode(out);
        self.last_write.encode(out);
        self.value.encode(out);
        encode_seq(&self.write_cert, out);
        encode_seq(&self.extra_slots, out);
        self.decision.encode(out);
        self.node.encode(out);
        self.signature.encode(out);
    }

    fn encoded_len(&self) -> usize {
        4 + 8
            + self.last_write.encoded_len()
            + self.value.encoded_len()
            + seq_encoded_len(&self.write_cert)
            + seq_encoded_len(&self.extra_slots)
            + self.decision.encoded_len()
            + 4
            + 64
    }
}

impl Decode for StopData {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StopData {
            regency: Decode::decode(r)?,
            cid: Decode::decode(r)?,
            last_write: Decode::decode(r)?,
            value: Decode::decode(r)?,
            write_cert: decode_seq(r)?,
            extra_slots: decode_seq(r)?,
            decision: Decode::decode(r)?,
            node: Decode::decode(r)?,
            signature: Decode::decode(r)?,
        })
    }
}

/// One slot re-proposal inside a [`ConsensusMsg::Sync`]: the new regent
/// re-binds every live window slot above the resume frontier in one
/// atomic message, so followers adopt the whole window (or none of it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotRebind {
    /// The slot being re-proposed.
    pub cid: u64,
    /// The value the slot resumes with: the certified bound value when
    /// one exists in the collect set, or an empty gap-filler batch.
    pub batch: Batch,
}

impl Encode for SlotRebind {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cid.encode(out);
        self.batch.encode(out);
    }

    fn encoded_len(&self) -> usize {
        8 + self.batch.encoded_len()
    }
}

impl Decode for SlotRebind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SlotRebind {
            cid: Decode::decode(r)?,
            batch: Decode::decode(r)?,
        })
    }
}

/// All messages exchanged by consensus replicas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusMsg {
    /// Leader's proposal for instance `cid` in epoch `epoch`.
    Propose {
        /// Instance being proposed.
        cid: u64,
        /// Epoch (= regency) of the proposal.
        epoch: u32,
        /// The proposed batch.
        batch: Batch,
    },
    /// A signed WRITE vote.
    Write(Vote),
    /// A signed ACCEPT vote.
    Accept(Vote),
    /// Request to install `regency` (sent on timeout).
    Stop {
        /// The regency the sender wants installed.
        regency: u32,
    },
    /// A replica's signed state snapshot, sent to the new leader.
    StopData(StopData),
    /// The new leader's synchronization message: the collect set that
    /// justifies its choice plus the re-proposal.
    Sync {
        /// Regency being concluded.
        regency: u32,
        /// At least `n - f` verified stop-data records.
        collect: Vec<StopData>,
        /// The instance the group resumes at.
        cid: u64,
        /// The value re-proposed for `cid`.
        batch: Batch,
        /// Re-proposals for in-flight window slots above `cid`, in
        /// contiguous ascending order up to the highest bound slot.
        /// Empty whenever the window depth is 1 or no later slot was
        /// bound.
        rebinds: Vec<SlotRebind>,
    },
    /// A client request forwarded to the current leader (sent after the
    /// first timeout stage).
    Forward {
        /// The forwarded request.
        request: Request,
    },
    /// Ask a peer for the decided batch of `cid`.
    ValueRequest {
        /// The decided instance whose value is missing.
        cid: u64,
    },
    /// Answer to [`ConsensusMsg::ValueRequest`], carrying the batch and
    /// its decision proof.
    ValueReply {
        /// The decided instance.
        cid: u64,
        /// Its decided batch.
        batch: Batch,
        /// Proof that `batch` was decided.
        proof: DecisionProof,
    },
}

impl ConsensusMsg {
    /// Approximate encoded size (used by the simulator's bandwidth
    /// model).
    pub fn wire_size(&self) -> usize {
        match self {
            ConsensusMsg::Propose { batch, .. } => {
                16 + batch.payload_bytes() + 16 * batch.len()
            }
            ConsensusMsg::Write(_) | ConsensusMsg::Accept(_) => 128,
            ConsensusMsg::Stop { .. } => 8,
            ConsensusMsg::StopData(sd) => {
                200 + sd.value.as_ref().map_or(0, |b| b.payload_bytes())
                    + 128 * sd.write_cert.len()
                    + sd.extra_slots
                        .iter()
                        .map(|s| {
                            32 + s.value.as_ref().map_or(0, |b| b.payload_bytes())
                                + 128 * s.write_cert.len()
                        })
                        .sum::<usize>()
                    + sd.decision.as_ref().map_or(0, |d| 128 * d.votes.len())
            }
            ConsensusMsg::Sync {
                collect,
                batch,
                rebinds,
                ..
            } => {
                64 + batch.payload_bytes()
                    + rebinds
                        .iter()
                        .map(|r| 16 + r.batch.payload_bytes() + 16 * r.batch.len())
                        .sum::<usize>()
                    + collect
                        .iter()
                        .map(|sd| 200 + sd.value.as_ref().map_or(0, |b| b.payload_bytes()))
                        .sum::<usize>()
            }
            ConsensusMsg::Forward { request } => 16 + request.wire_size(),
            ConsensusMsg::ValueRequest { .. } => 16,
            ConsensusMsg::ValueReply { batch, proof, .. } => {
                16 + batch.payload_bytes() + 128 * proof.votes.len()
            }
        }
    }
}

impl Encode for ConsensusMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusMsg::Propose { cid, epoch, batch } => {
                out.push(0);
                cid.encode(out);
                epoch.encode(out);
                batch.encode(out);
            }
            ConsensusMsg::Write(vote) => {
                out.push(1);
                vote.encode(out);
            }
            ConsensusMsg::Accept(vote) => {
                out.push(2);
                vote.encode(out);
            }
            ConsensusMsg::Stop { regency } => {
                out.push(3);
                regency.encode(out);
            }
            ConsensusMsg::StopData(sd) => {
                out.push(4);
                sd.encode(out);
            }
            ConsensusMsg::Sync {
                regency,
                collect,
                cid,
                batch,
                rebinds,
            } => {
                out.push(5);
                regency.encode(out);
                encode_seq(collect, out);
                cid.encode(out);
                batch.encode(out);
                encode_seq(rebinds, out);
            }
            ConsensusMsg::Forward { request } => {
                out.push(6);
                request.encode(out);
            }
            ConsensusMsg::ValueRequest { cid } => {
                out.push(7);
                cid.encode(out);
            }
            ConsensusMsg::ValueReply { cid, batch, proof } => {
                out.push(8);
                cid.encode(out);
                batch.encode(out);
                proof.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ConsensusMsg::Propose { batch, .. } => 8 + 4 + batch.encoded_len(),
            ConsensusMsg::Write(vote) | ConsensusMsg::Accept(vote) => vote.encoded_len(),
            ConsensusMsg::Stop { .. } => 4,
            ConsensusMsg::StopData(sd) => sd.encoded_len(),
            ConsensusMsg::Sync {
                collect,
                batch,
                rebinds,
                ..
            } => 4 + seq_encoded_len(collect) + 8 + batch.encoded_len() + seq_encoded_len(rebinds),
            ConsensusMsg::Forward { request } => request.encoded_len(),
            ConsensusMsg::ValueRequest { .. } => 8,
            ConsensusMsg::ValueReply { cid: _, batch, proof } => {
                8 + batch.encoded_len() + proof.encoded_len()
            }
        }
    }
}

impl Decode for ConsensusMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ConsensusMsg::Propose {
                cid: Decode::decode(r)?,
                epoch: Decode::decode(r)?,
                batch: Decode::decode(r)?,
            },
            1 => ConsensusMsg::Write(Decode::decode(r)?),
            2 => ConsensusMsg::Accept(Decode::decode(r)?),
            3 => ConsensusMsg::Stop {
                regency: Decode::decode(r)?,
            },
            4 => ConsensusMsg::StopData(Decode::decode(r)?),
            5 => ConsensusMsg::Sync {
                regency: Decode::decode(r)?,
                collect: decode_seq(r)?,
                cid: Decode::decode(r)?,
                batch: Decode::decode(r)?,
                rebinds: decode_seq(r)?,
            },
            6 => ConsensusMsg::Forward {
                request: Decode::decode(r)?,
            },
            7 => ConsensusMsg::ValueRequest {
                cid: Decode::decode(r)?,
            },
            8 => ConsensusMsg::ValueReply {
                cid: Decode::decode(r)?,
                batch: Decode::decode(r)?,
                proof: Decode::decode(r)?,
            },
            d => return Err(WireError::InvalidDiscriminant(d)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::QuorumSystem;
    use hlf_wire::{from_bytes, to_bytes};

    fn keys(n: usize) -> (Vec<SigningKey>, Vec<VerifyingKey>) {
        let signing: Vec<SigningKey> = (0..n)
            .map(|i| SigningKey::from_seed(format!("replica-{i}").as_bytes()))
            .collect();
        let verifying = signing.iter().map(|k| *k.verifying_key()).collect();
        (signing, verifying)
    }

    fn sample_batch() -> Batch {
        Batch::new(vec![
            Request::new(ClientId(1), 1, Bytes::from_static(b"tx-a")),
            Request::new(ClientId(2), 7, Bytes::from_static(b"tx-b")),
        ])
    }

    #[test]
    fn batch_digest_is_canonical_and_sensitive() {
        let a = sample_batch();
        let b = sample_batch();
        assert_eq!(a.digest(), b.digest());
        let mut c = sample_batch();
        c.requests[0].seq = 2;
        assert_ne!(a.digest(), c.digest());
        // Order matters (this is an *ordered* batch).
        let mut d = sample_batch();
        d.requests.reverse();
        assert_ne!(a.digest(), d.digest());
        assert_eq!(a.payload_bytes(), 8);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(Batch::empty().is_empty());
    }

    #[test]
    fn vote_sign_verify_and_domain_separation() {
        let (sk, vk) = keys(1);
        let h = sample_batch().digest();
        let write = Vote::sign(&sk[0], VotePhase::Write, NodeId(0), 5, 2, h);
        assert!(write.verify(&vk[0]));

        // The same fields signed as ACCEPT must not verify as WRITE.
        let accept = Vote::sign(&sk[0], VotePhase::Accept, NodeId(0), 5, 2, h);
        let mut forged = accept.clone();
        forged.phase = VotePhase::Write;
        assert!(!forged.verify(&vk[0]));

        // Any field change breaks the signature.
        let mut tampered = write.clone();
        tampered.cid = 6;
        assert!(!tampered.verify(&vk[0]));
    }

    #[test]
    fn decision_proof_verification() {
        let (sk, vk) = keys(4);
        let quorums = QuorumSystem::classic(4, 1).unwrap();
        let h = sample_batch().digest();
        let votes: Vec<Vote> = (0..3)
            .map(|i| Vote::sign(&sk[i], VotePhase::Accept, NodeId(i as u32), 9, 0, h))
            .collect();
        let proof = DecisionProof {
            cid: 9,
            hash: h,
            votes,
        };
        proof.verify(&quorums, &vk).unwrap();

        // Two votes are not a quorum.
        let thin = DecisionProof {
            cid: 9,
            hash: h,
            votes: proof.votes[..2].to_vec(),
        };
        assert!(thin.verify(&quorums, &vk).is_err());

        // Duplicated voter is rejected.
        let mut dup = proof.clone();
        dup.votes[1] = dup.votes[0].clone();
        assert!(dup.verify(&quorums, &vk).is_err());

        // Write votes cannot masquerade as accepts.
        let writes: Vec<Vote> = (0..3)
            .map(|i| Vote::sign(&sk[i], VotePhase::Write, NodeId(i as u32), 9, 0, h))
            .collect();
        let wrong_phase = DecisionProof {
            cid: 9,
            hash: h,
            votes: writes,
        };
        assert!(wrong_phase.verify(&quorums, &vk).is_err());

        // Mixed epochs rejected.
        let mut mixed = proof.clone();
        mixed.votes[2] = Vote::sign(&sk[2], VotePhase::Accept, NodeId(2), 9, 1, h);
        assert!(mixed.verify(&quorums, &vk).is_err());
    }

    #[test]
    fn stop_data_signature_covers_all_fields() {
        let (sk, vk) = keys(2);
        let batch = sample_batch();
        let sd = StopData::sign(
            &sk[0],
            NodeId(0),
            3,
            11,
            Some((2, batch.digest())),
            Some(batch.clone()),
            vec![],
            None,
        );
        assert!(sd.verify_signature(&vk[0]));
        assert!(!sd.verify_signature(&vk[1]));

        let mut tampered = sd.clone();
        tampered.cid = 12;
        assert!(!tampered.verify_signature(&vk[0]));

        let mut swapped_value = sd.clone();
        swapped_value.value = Some(Batch::empty());
        assert!(!swapped_value.verify_signature(&vk[0]));
    }

    #[test]
    fn stop_data_signature_covers_extra_slots() {
        let (sk, vk) = keys(1);
        let batch = sample_batch();
        let report = SlotReport {
            cid: 12,
            last_write: Some((0, batch.digest())),
            value: Some(batch.clone()),
            write_cert: vec![],
        };
        let sd = StopData::sign_with_slots(
            &sk[0],
            NodeId(0),
            3,
            11,
            None,
            None,
            vec![],
            vec![report],
            None,
        );
        assert!(sd.verify_signature(&vk[0]));

        // Dropping, retargeting, or value-swapping a slot report breaks
        // the signature.
        let mut dropped = sd.clone();
        dropped.extra_slots.clear();
        assert!(!dropped.verify_signature(&vk[0]));
        let mut moved = sd.clone();
        moved.extra_slots[0].cid = 13;
        assert!(!moved.verify_signature(&vk[0]));
        let mut swapped = sd.clone();
        swapped.extra_slots[0].value = Some(Batch::empty());
        assert!(!swapped.verify_signature(&vk[0]));
    }

    #[test]
    fn all_messages_roundtrip() {
        let (sk, _) = keys(1);
        let batch = sample_batch();
        let h = batch.digest();
        let vote = Vote::sign(&sk[0], VotePhase::Write, NodeId(0), 1, 0, h);
        let accept = Vote::sign(&sk[0], VotePhase::Accept, NodeId(0), 1, 0, h);
        let report = SlotReport {
            cid: 2,
            last_write: Some((0, h)),
            value: Some(batch.clone()),
            write_cert: vec![vote.clone()],
        };
        let sd = StopData::sign_with_slots(
            &sk[0],
            NodeId(0),
            1,
            1,
            None,
            None,
            vec![],
            vec![report],
            None,
        );
        let proof = DecisionProof {
            cid: 1,
            hash: h,
            votes: vec![accept.clone()],
        };
        let messages = vec![
            ConsensusMsg::Propose {
                cid: 1,
                epoch: 0,
                batch: batch.clone(),
            },
            ConsensusMsg::Write(vote),
            ConsensusMsg::Accept(accept),
            ConsensusMsg::Stop { regency: 4 },
            ConsensusMsg::StopData(sd.clone()),
            ConsensusMsg::Sync {
                regency: 4,
                collect: vec![sd],
                cid: 1,
                batch: batch.clone(),
                rebinds: vec![SlotRebind {
                    cid: 2,
                    batch: batch.clone(),
                }],
            },
            ConsensusMsg::Forward {
                request: batch.requests[0].clone(),
            },
            ConsensusMsg::ValueRequest { cid: 3 },
            ConsensusMsg::ValueReply {
                cid: 3,
                batch,
                proof,
            },
        ];
        for msg in messages {
            let bytes = to_bytes(&msg);
            assert_eq!(bytes.len(), msg.encoded_len());
            assert_eq!(from_bytes::<ConsensusMsg>(&bytes).unwrap(), msg);
            assert!(msg.wire_size() > 0);
        }
    }

    #[test]
    fn junk_discriminant_rejected() {
        assert_eq!(
            from_bytes::<ConsensusMsg>(&[99]),
            Err(WireError::InvalidDiscriminant(99))
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn request_roundtrip(client in any::<u32>(), seq in any::<u64>(),
                                 payload in proptest::collection::vec(any::<u8>(), 0..512)) {
                let req = Request::new(ClientId(client), seq, payload);
                let bytes = to_bytes(&req);
                prop_assert_eq!(from_bytes::<Request>(&bytes).unwrap(), req);
            }

            #[test]
            fn batch_digest_injective_on_request_count(k in 0usize..8) {
                let reqs: Vec<Request> = (0..k as u64)
                    .map(|i| Request::new(ClientId(0), i, vec![0u8; 4]))
                    .collect();
                let batch = Batch::new(reqs);
                let bigger = Batch::new(
                    (0..k as u64 + 1)
                        .map(|i| Request::new(ClientId(0), i, vec![0u8; 4]))
                        .collect(),
                );
                prop_assert_ne!(batch.digest(), bigger.digest());
            }
        }
    }
}
