//! The synchronization phase's deterministic selection function.
//!
//! When a regency change installs a new leader, every replica sends the
//! leader a signed [`StopData`] snapshot. The leader gathers at least
//! `n - f` of them (the *collect set*) and runs [`select`] to determine
//! (a) which consensus instance the group resumes at and (b) whether a
//! value is *bound* — i.e. might already have been decided somewhere and
//! therefore must be re-proposed verbatim.
//!
//! Followers re-run the same function over the collect set carried by
//! the leader's SYNC message, so a Byzantine leader cannot smuggle in a
//! value that contradicts a possible earlier decision.
//!
//! Safety sketch: if instance `c` decided batch `v` anywhere, a quorum
//! accept-voted `v`, and every correct accept-voter held a WRITE
//! certificate for `v` at that moment. Either at least one of those
//! correct replicas appears in the collect set still at instance `c`
//! (its certificate binds `v`), or enough replicas advanced past `c`
//! that a decision proof raises the resume instance beyond `c`.

use crate::messages::{Batch, SlotRebind, StopData, Vote, VotePhase};
use crate::quorum::QuorumSystem;
use crate::ConsensusError;
use hlf_crypto::ecdsa::VerifyingKey;
use hlf_crypto::sha256::Hash256;
use std::collections::{BTreeMap, HashSet};

/// Upper bound on the pipelined window depth the protocol accepts.
/// Bounds the slot range the selection function scans and the rebind
/// vector a SYNC may carry, so a Byzantine collect set cannot force
/// unbounded work.
pub const MAX_WINDOW: u64 = 64;

/// Outcome of the selection function.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// The instance the group resumes at.
    pub cid: u64,
    /// A value that must be re-proposed, when one is bound: the digest,
    /// the certificate epoch it was bound from, and the batch itself if
    /// any collect entry carried it.
    pub bound: Option<BoundValue>,
}

/// Outcome of the window-aware selection function: the frontier
/// selection plus every later in-flight slot the new regent must
/// re-propose.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSelection {
    /// The instance the group resumes at (the window frontier).
    pub cid: u64,
    /// The frontier's bound value, when one exists.
    pub bound: Option<BoundValue>,
    /// Contiguous slots `cid+1 ..= highest bound slot`, each with its
    /// bound value or `None` for an unbound gap (which must be
    /// re-proposed as an empty batch so in-order release can pass it).
    pub extra: Vec<(u64, Option<BoundValue>)>,
}

/// A value bound by a WRITE certificate in the collect set.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundValue {
    /// Digest of the bound batch.
    pub hash: Hash256,
    /// Epoch of the certificate that bound it.
    pub epoch: u32,
    /// The batch, when recoverable from the collect set.
    pub value: Option<Batch>,
}

/// Validates a WRITE certificate: distinct signers, matching fields,
/// valid signatures, quorum weight.
fn write_cert_valid(
    votes: &[Vote],
    cid: u64,
    epoch: u32,
    hash: &Hash256,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> bool {
    let mut seen = HashSet::new();
    for vote in votes {
        if vote.phase != VotePhase::Write
            || vote.cid != cid
            || vote.epoch != epoch
            || vote.hash != *hash
        {
            return false;
        }
        if !seen.insert(vote.node) {
            return false;
        }
        let Some(key) = keys.get(vote.node.as_usize()) else {
            return false;
        };
        if !vote.verify(key) {
            return false;
        }
    }
    quorums.is_quorum(seen.iter().copied())
}

/// Filters a collect set down to entries with valid signatures and the
/// expected regency, deduplicating senders.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidCollect`] if fewer than `n - f`
/// valid entries remain.
pub fn validate_collect<'a>(
    collect: &'a [StopData],
    regency: u32,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Result<Vec<&'a StopData>, ConsensusError> {
    let mut seen = HashSet::new();
    let mut valid = Vec::new();
    for sd in collect {
        if sd.regency != regency {
            continue;
        }
        let Some(key) = keys.get(sd.node.as_usize()) else {
            continue;
        };
        if !seen.insert(sd.node) {
            continue;
        }
        if !sd.verify_signature(key) {
            continue;
        }
        valid.push(sd);
    }
    if valid.len() < quorums.collect_count() {
        return Err(ConsensusError::InvalidCollect("too few valid entries"));
    }
    Ok(valid)
}

/// The bound value at one window slot, across frontier fields and
/// per-slot reports of every valid collect entry. Highest certificate
/// epoch wins.
fn slot_bound(
    valid: &[&StopData],
    cid: u64,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Option<BoundValue> {
    let mut bound: Option<BoundValue> = None;
    let mut consider = |epoch: u32, hash: &Hash256, cert: &[Vote]| {
        if cert.is_empty() || !write_cert_valid(cert, cid, epoch, hash, quorums, keys) {
            return;
        }
        if bound.as_ref().is_none_or(|b| epoch > b.epoch) {
            bound = Some(BoundValue {
                hash: *hash,
                epoch,
                value: None,
            });
        }
    };
    for sd in valid {
        if sd.cid == cid {
            if let Some((epoch, hash)) = sd.last_write {
                consider(epoch, &hash, &sd.write_cert);
            }
        }
        for report in &sd.extra_slots {
            if report.cid == cid {
                if let Some((epoch, hash)) = report.last_write {
                    consider(epoch, &hash, &report.write_cert);
                }
            }
        }
    }
    bound
}

/// Recovers the batch bytes behind a bound hash from any collect entry
/// (frontier value or per-slot report value).
fn recover_value(valid: &[&StopData], bound: &mut BoundValue) {
    for sd in valid {
        let values = sd
            .value
            .iter()
            .chain(sd.extra_slots.iter().filter_map(|r| r.value.as_ref()));
        for batch in values {
            if batch.digest() == bound.hash {
                bound.value = Some(batch.clone());
                return;
            }
        }
    }
}

/// Runs the selection function over a validated collect set.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidCollect`] if the collect set is too
/// small or malformed.
pub fn select(
    collect: &[StopData],
    regency: u32,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Result<Selection, ConsensusError> {
    let window = select_window(collect, regency, quorums, keys)?;
    Ok(Selection {
        cid: window.cid,
        bound: window.bound,
    })
}

/// Runs the window-aware selection function over a collect set: the
/// frontier selection plus a bound value for every later in-flight slot
/// certified anywhere in the collect set.
///
/// An ACCEPT quorum can exist at slot `s > frontier` while the frontier
/// itself is still unbound; every accept-voter held a WRITE certificate
/// for `s`, and the collect set (`n - f` entries) intersects that quorum
/// in a correct replica whose [`crate::messages::SlotReport`] carries
/// the certificate — so scanning the reports is exactly what makes
/// decisions above the frontier survive the view change.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidCollect`] if the collect set is too
/// small or malformed.
pub fn select_window(
    collect: &[StopData],
    regency: u32,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Result<WindowSelection, ConsensusError> {
    let valid = validate_collect(collect, regency, quorums, keys)?;

    // Highest instance provably already decided everywhere below it:
    // a valid decision proof for instance c lets the group resume at
    // c + 1 even if only one replica reports it.
    let mut proven: u64 = 1;
    for sd in &valid {
        if let Some(proof) = &sd.decision {
            if proof.verify(quorums, keys).is_ok() && proof.cid + 1 > proven {
                proven = proof.cid + 1;
            }
        }
    }

    // The (f+1)-th largest claimed instance: at least one correct
    // replica claims an instance >= this value.
    let mut cids: Vec<u64> = valid.iter().map(|sd| sd.cid).collect();
    cids.sort_unstable_by(|a, b| b.cmp(a));
    let kth = cids
        .get(quorums.f())
        .or_else(|| cids.last())
        .copied()
        .unwrap_or(0);

    let target = proven.max(kth);

    let mut bound = slot_bound(&valid, target, quorums, keys);
    if let Some(b) = &mut bound {
        recover_value(&valid, b);
    }

    // Bound values at slots above the frontier, within the protocol's
    // window horizon.
    let mut later: BTreeMap<u64, BoundValue> = BTreeMap::new();
    for slot in target + 1..target + MAX_WINDOW {
        if let Some(mut b) = slot_bound(&valid, slot, quorums, keys) {
            recover_value(&valid, &mut b);
            later.insert(slot, b);
        }
    }
    let highest = later.keys().next_back().copied().unwrap_or(target);
    let extra = (target + 1..=highest)
        .map(|slot| {
            let b = later.remove(&slot);
            (slot, b)
        })
        .collect();

    Ok(WindowSelection {
        cid: target,
        bound,
        extra,
    })
}

/// Verifies a leader's SYNC message against its collect set: re-runs the
/// selection and checks the leader respected it.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidCollect`] when the collect set is
/// invalid or the proposed value contradicts the bound value.
pub fn validate_sync(
    collect: &[StopData],
    regency: u32,
    cid: u64,
    batch: &Batch,
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Result<Selection, ConsensusError> {
    let window = validate_sync_window(collect, regency, cid, batch, &[], quorums, keys)?;
    Ok(Selection {
        cid: window.cid,
        bound: window.bound,
    })
}

/// Verifies a leader's windowed SYNC: the frontier checks of
/// [`validate_sync`] plus an exact match between the carried `rebinds`
/// and the window selection — every bound slot re-proposed verbatim,
/// every unbound gap slot re-proposed empty, nothing omitted or padded.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidCollect`] when the collect set is
/// invalid or the proposed values contradict the selection.
pub fn validate_sync_window(
    collect: &[StopData],
    regency: u32,
    cid: u64,
    batch: &Batch,
    rebinds: &[SlotRebind],
    quorums: &QuorumSystem,
    keys: &[VerifyingKey],
) -> Result<WindowSelection, ConsensusError> {
    let selection = select_window(collect, regency, quorums, keys)?;
    if selection.cid != cid {
        return Err(ConsensusError::InvalidCollect("wrong resume instance"));
    }
    if let Some(bound) = &selection.bound {
        if batch.digest() != bound.hash {
            return Err(ConsensusError::InvalidCollect("bound value not proposed"));
        }
    }
    if rebinds.len() != selection.extra.len() {
        return Err(ConsensusError::InvalidCollect("window rebinds mismatch"));
    }
    for (rebind, (slot, bound)) in rebinds.iter().zip(&selection.extra) {
        if rebind.cid != *slot {
            return Err(ConsensusError::InvalidCollect("rebind slot mismatch"));
        }
        match bound {
            Some(bound) => {
                if rebind.batch.digest() != bound.hash {
                    return Err(ConsensusError::InvalidCollect("bound slot not re-proposed"));
                }
            }
            None => {
                if !rebind.batch.is_empty() {
                    return Err(ConsensusError::InvalidCollect("gap slot must be empty"));
                }
            }
        }
    }
    Ok(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Request;
    use hlf_wire::Bytes;
    use hlf_crypto::ecdsa::SigningKey;
    use hlf_wire::{ClientId, NodeId};

    struct Fixture {
        sk: Vec<SigningKey>,
        vk: Vec<VerifyingKey>,
        quorums: QuorumSystem,
    }

    fn fixture(n: usize, f: usize) -> Fixture {
        let sk: Vec<SigningKey> = (0..n)
            .map(|i| SigningKey::from_seed(format!("sync-{i}").as_bytes()))
            .collect();
        let vk = sk.iter().map(|k| *k.verifying_key()).collect();
        Fixture {
            sk,
            vk,
            quorums: QuorumSystem::classic(n, f).unwrap(),
        }
    }

    fn batch(tag: u8) -> Batch {
        Batch::new(vec![Request::new(
            ClientId(1),
            tag as u64,
            Bytes::copy_from_slice(&[tag; 8]),
        )])
    }

    fn write_cert(fx: &Fixture, voters: &[usize], cid: u64, epoch: u32, hash: Hash256) -> Vec<Vote> {
        voters
            .iter()
            .map(|&i| {
                Vote::sign(
                    &fx.sk[i],
                    VotePhase::Write,
                    NodeId(i as u32),
                    cid,
                    epoch,
                    hash,
                )
            })
            .collect()
    }

    fn plain_sd(fx: &Fixture, node: usize, regency: u32, cid: u64) -> StopData {
        StopData::sign(
            &fx.sk[node],
            NodeId(node as u32),
            regency,
            cid,
            None,
            None,
            vec![],
            None,
        )
    }

    #[test]
    fn free_selection_when_nothing_written() {
        let fx = fixture(4, 1);
        let collect: Vec<StopData> = (0..3).map(|i| plain_sd(&fx, i, 1, 5)).collect();
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 5);
        assert!(sel.bound.is_none());
    }

    #[test]
    fn too_few_entries_rejected() {
        let fx = fixture(4, 1);
        let collect: Vec<StopData> = (0..2).map(|i| plain_sd(&fx, i, 1, 5)).collect();
        assert!(matches!(
            select(&collect, 1, &fx.quorums, &fx.vk),
            Err(ConsensusError::InvalidCollect(_))
        ));
    }

    #[test]
    fn bad_signature_entries_are_ignored() {
        let fx = fixture(4, 1);
        let mut collect: Vec<StopData> = (0..3).map(|i| plain_sd(&fx, i, 1, 5)).collect();
        collect[2].cid = 99; // invalidates the signature
        assert!(select(&collect, 1, &fx.quorums, &fx.vk).is_err());
        // Adding a fourth valid entry restores the quorum of valid ones.
        collect.push(plain_sd(&fx, 3, 1, 5));
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 5);
    }

    #[test]
    fn duplicate_senders_count_once() {
        let fx = fixture(4, 1);
        let sd = plain_sd(&fx, 0, 1, 5);
        let collect = vec![sd.clone(), sd.clone(), sd];
        assert!(select(&collect, 1, &fx.quorums, &fx.vk).is_err());
    }

    #[test]
    fn write_certificate_binds_value() {
        let fx = fixture(4, 1);
        let b = batch(7);
        let h = b.digest();
        let cert = write_cert(&fx, &[0, 1, 2], 5, 0, h);
        let holder = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            1,
            5,
            Some((0, h)),
            Some(b.clone()),
            cert,
            None,
        );
        let collect = vec![holder, plain_sd(&fx, 1, 1, 5), plain_sd(&fx, 2, 1, 5)];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 5);
        let bound = sel.bound.expect("value must be bound");
        assert_eq!(bound.hash, h);
        assert_eq!(bound.value, Some(b.clone()));

        // validate_sync accepts the bound value and rejects others.
        validate_sync(&collect, 1, 5, &b, &fx.quorums, &fx.vk).unwrap();
        assert!(validate_sync(&collect, 1, 5, &batch(9), &fx.quorums, &fx.vk).is_err());
        assert!(validate_sync(&collect, 1, 6, &b, &fx.quorums, &fx.vk).is_err());
    }

    #[test]
    fn undersized_certificate_does_not_bind() {
        let fx = fixture(4, 1);
        let b = batch(7);
        let h = b.digest();
        let cert = write_cert(&fx, &[0, 1], 5, 0, h); // only 2 < quorum 3
        let holder = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            1,
            5,
            Some((0, h)),
            Some(b),
            cert,
            None,
        );
        let collect = vec![holder, plain_sd(&fx, 1, 1, 5), plain_sd(&fx, 2, 1, 5)];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert!(sel.bound.is_none());
    }

    #[test]
    fn forged_certificate_votes_do_not_bind() {
        let fx = fixture(4, 1);
        let b = batch(7);
        let h = b.digest();
        // Votes signed for a different cid cannot certify cid 5.
        let cert = write_cert(&fx, &[0, 1, 2], 4, 0, h)
            .into_iter()
            .map(|mut v| {
                v.cid = 5;
                v
            })
            .collect();
        let holder = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            1,
            5,
            Some((0, h)),
            Some(b),
            cert,
            None,
        );
        let collect = vec![holder, plain_sd(&fx, 1, 1, 5), plain_sd(&fx, 2, 1, 5)];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert!(sel.bound.is_none());
    }

    #[test]
    fn highest_epoch_certificate_wins() {
        let fx = fixture(4, 1);
        let b_old = batch(1);
        let b_new = batch(2);
        let cert_old = write_cert(&fx, &[0, 1, 2], 5, 0, b_old.digest());
        let cert_new = write_cert(&fx, &[1, 2, 3], 5, 2, b_new.digest());
        let holder_old = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            3,
            5,
            Some((0, b_old.digest())),
            Some(b_old),
            cert_old,
            None,
        );
        let holder_new = StopData::sign(
            &fx.sk[1],
            NodeId(1),
            3,
            5,
            Some((2, b_new.digest())),
            Some(b_new.clone()),
            cert_new,
            None,
        );
        let collect = vec![holder_old, holder_new, plain_sd(&fx, 2, 3, 5)];
        let sel = select(&collect, 3, &fx.quorums, &fx.vk).unwrap();
        let bound = sel.bound.unwrap();
        assert_eq!(bound.hash, b_new.digest());
        assert_eq!(bound.epoch, 2);
        assert_eq!(bound.value, Some(b_new));
    }

    #[test]
    fn kth_largest_cid_resists_byzantine_inflation() {
        let fx = fixture(4, 1);
        // A Byzantine replica claims an absurd instance; with f = 1 the
        // 2nd-largest claim (f+1 = 2) is what counts.
        let collect = vec![
            plain_sd(&fx, 0, 1, 1_000_000),
            plain_sd(&fx, 1, 1, 7),
            plain_sd(&fx, 2, 1, 7),
        ];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 7);
    }

    #[test]
    fn decision_proof_raises_resume_instance() {
        let fx = fixture(4, 1);
        let b = batch(3);
        let h = b.digest();
        let accepts: Vec<Vote> = [0usize, 1, 2]
            .iter()
            .map(|&i| {
                Vote::sign(
                    &fx.sk[i],
                    VotePhase::Accept,
                    NodeId(i as u32),
                    9,
                    0,
                    h,
                )
            })
            .collect();
        let proof = crate::messages::DecisionProof {
            cid: 9,
            hash: h,
            votes: accepts,
        };
        // One replica decided instance 9 and moved to 10; the other two
        // lag at 7. The proof forces resumption at 10, not 7.
        let ahead = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            1,
            10,
            None,
            None,
            vec![],
            Some(proof),
        );
        let collect = vec![ahead, plain_sd(&fx, 1, 1, 7), plain_sd(&fx, 2, 1, 7)];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 10);
    }

    #[test]
    fn invalid_decision_proof_is_ignored() {
        let fx = fixture(4, 1);
        let b = batch(3);
        let h = b.digest();
        // Proof with only 2 accepts is not a quorum.
        let accepts: Vec<Vote> = [0usize, 1]
            .iter()
            .map(|&i| {
                Vote::sign(&fx.sk[i], VotePhase::Accept, NodeId(i as u32), 9, 0, h)
            })
            .collect();
        let proof = crate::messages::DecisionProof {
            cid: 9,
            hash: h,
            votes: accepts,
        };
        let ahead = StopData::sign(
            &fx.sk[0],
            NodeId(0),
            1,
            10,
            None,
            None,
            vec![],
            Some(proof),
        );
        let collect = vec![ahead, plain_sd(&fx, 1, 1, 7), plain_sd(&fx, 2, 1, 7)];
        let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 7);
    }

    #[test]
    fn slot_report_certificate_binds_later_slot() {
        use crate::messages::SlotReport;
        let fx = fixture(4, 1);
        let b_later = batch(8);
        let h_later = b_later.digest();
        // All replicas sit at frontier 5, but one reports a certified
        // WRITE for in-flight slot 7 (an ACCEPT quorum may exist there).
        let cert = write_cert(&fx, &[0, 1, 2], 7, 0, h_later);
        let report = SlotReport {
            cid: 7,
            last_write: Some((0, h_later)),
            value: Some(b_later.clone()),
            write_cert: cert,
        };
        let holder = StopData::sign_with_slots(
            &fx.sk[0],
            NodeId(0),
            1,
            5,
            None,
            None,
            vec![],
            vec![report],
            None,
        );
        let collect = vec![holder, plain_sd(&fx, 1, 1, 5), plain_sd(&fx, 2, 1, 5)];
        let sel = select_window(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert_eq!(sel.cid, 5);
        assert!(sel.bound.is_none());
        // Contiguous rebind range 6..=7: slot 6 is an unbound gap, slot
        // 7 carries the certified value.
        assert_eq!(sel.extra.len(), 2);
        assert_eq!(sel.extra[0].0, 6);
        assert!(sel.extra[0].1.is_none());
        assert_eq!(sel.extra[1].0, 7);
        let bound = sel.extra[1].1.as_ref().unwrap();
        assert_eq!(bound.hash, h_later);
        assert_eq!(bound.value, Some(b_later.clone()));

        // A compliant SYNC: any frontier batch, empty gap at 6, the
        // bound value verbatim at 7.
        let good = [
            SlotRebind {
                cid: 6,
                batch: Batch::empty(),
            },
            SlotRebind {
                cid: 7,
                batch: b_later.clone(),
            },
        ];
        validate_sync_window(&collect, 1, 5, &batch(1), &good, &fx.quorums, &fx.vk).unwrap();

        // Omitting the bound slot, swapping its value, or padding the
        // gap with requests is rejected.
        assert!(
            validate_sync_window(&collect, 1, 5, &batch(1), &[], &fx.quorums, &fx.vk).is_err()
        );
        let swapped = [
            good[0].clone(),
            SlotRebind {
                cid: 7,
                batch: batch(9),
            },
        ];
        assert!(validate_sync_window(
            &collect, 1, 5, &batch(1), &swapped, &fx.quorums, &fx.vk
        )
        .is_err());
        let padded = [
            SlotRebind {
                cid: 6,
                batch: batch(2),
            },
            good[1].clone(),
        ];
        assert!(validate_sync_window(
            &collect, 1, 5, &batch(1), &padded, &fx.quorums, &fx.vk
        )
        .is_err());
    }

    #[test]
    fn undersized_slot_report_certificate_does_not_bind() {
        use crate::messages::SlotReport;
        let fx = fixture(4, 1);
        let b = batch(8);
        let report = SlotReport {
            cid: 6,
            last_write: Some((0, b.digest())),
            value: Some(b),
            write_cert: write_cert(&fx, &[0, 1], 6, 0, batch(8).digest()),
        };
        let holder = StopData::sign_with_slots(
            &fx.sk[0],
            NodeId(0),
            1,
            5,
            None,
            None,
            vec![],
            vec![report],
            None,
        );
        let collect = vec![holder, plain_sd(&fx, 1, 1, 5), plain_sd(&fx, 2, 1, 5)];
        let sel = select_window(&collect, 1, &fx.quorums, &fx.vk).unwrap();
        assert!(sel.extra.is_empty());
        // And the plain-frontier wrapper still accepts the window.
        validate_sync(&collect, 1, 5, &batch(1), &fx.quorums, &fx.vk).unwrap();
    }

    #[test]
    fn wheat_weighted_certificates() {
        // With weights [2,2,1,1,1] and quorum weight 5, a certificate
        // from {0, 1, 4} (weight 5) binds, but {2, 3, 4} (weight 3)
        // does not.
        let sk: Vec<SigningKey> = (0..5)
            .map(|i| SigningKey::from_seed(format!("wheat-{i}").as_bytes()))
            .collect();
        let vk: Vec<VerifyingKey> = sk.iter().map(|k| *k.verifying_key()).collect();
        let quorums = QuorumSystem::wheat_binary(5, 1).unwrap();
        let fx = Fixture {
            sk,
            vk,
            quorums,
        };
        let b = batch(4);
        let h = b.digest();

        for (voters, should_bind) in [(vec![0usize, 1, 4], true), (vec![2usize, 3, 4], false)] {
            let cert = write_cert(&fx, &voters, 2, 0, h);
            let holder = StopData::sign(
                &fx.sk[0],
                NodeId(0),
                1,
                2,
                Some((0, h)),
                Some(b.clone()),
                cert,
                None,
            );
            let collect = vec![
                holder,
                plain_sd(&fx, 1, 1, 2),
                plain_sd(&fx, 2, 1, 2),
                plain_sd(&fx, 3, 1, 2),
            ];
            let sel = select(&collect, 1, &fx.quorums, &fx.vk).unwrap();
            assert_eq!(sel.bound.is_some(), should_bind, "voters {voters:?}");
        }
    }
}
