//! **Trace report**: merges per-node flight-recorder dumps from a
//! traced 4-replica geo run (f = 1, one deliberately slowed replica)
//! into causal per-transaction timelines, prints a phase-attribution
//! table (frontend relay, WRITE quorum, ACCEPT, sign, collect), checks
//! the slow replica was flagged by the straggler detector, and writes
//! everything to `BENCH_trace.json`.
//!
//! It also measures the tracing overhead on the real threaded service:
//! the binary re-executes itself twice as a throughput probe — once
//! with `HLF_TRACE` unset, once set — and records the on/off delta
//! into `BENCH_obs.json` as a synthetic `trace_overhead` registry
//! (`HLF_TRACE` is latched process-wide on first read, so A/B needs
//! two processes).
//!
//! ```sh
//! cargo run --release -p bench --bin trace_report              # writes BENCH_trace.json
//! cargo run --release -p bench --bin trace_report -- out.json  # custom path
//! ```

use bench::trace::{merge_timelines, Timeline, PHASE_NAMES};
use hlf_obs::flight::EventKind;
use hlf_obs::{MetricSnapshot, MetricValue, Snapshot};
use hlf_simnet::SimTime;
use hlf_wire::Bytes;
use ordering_core::service::{OrderingService, ServiceOptions};
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};
use std::time::{Duration, Instant};

/// Replica slowed in the sim (São Paulo; not the leader).
const SLOW_NODE: usize = 3;
/// Extra one-way delay on every link touching the slow replica.
const SLOW_EXTRA_MS: u64 = 250;

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(first) = args.next() {
        if first == "--throughput-probe" {
            throughput_probe();
            return;
        }
        run_report(&first);
        return;
    }
    run_report("BENCH_trace.json");
}

fn run_report(out_path: &str) {
    println!("# trace_report: 4-replica BFT-SMaRt geo sim, f=1");
    println!(
        "# replica {SLOW_NODE} slowed by {SLOW_EXTRA_MS} ms per link; tracing + health on\n"
    );

    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_obs()
        .with_trace()
        .with_slow_replica(SLOW_NODE, SimTime::from_millis(SLOW_EXTRA_MS));
    config.duration = SimTime::from_secs(10);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;
    let result = run_geo_experiment(&config);
    let dumps = result.flights.as_deref().expect("trace requested");
    let obs = result.obs.as_deref().expect("obs requested");

    // Satellite self-check: the dump JSON is byte-stable
    // (emit → parse → re-emit identical).
    let json1 = hlf_obs::dumps_to_json(dumps);
    let reparsed = hlf_obs::dumps_from_json(&json1).expect("own dump JSON parses");
    assert_eq!(
        json1,
        hlf_obs::dumps_to_json(&reparsed),
        "flight dump JSON must re-emit byte-identically"
    );
    println!(
        "flight dumps: {} recorders, {} events total (JSON round-trip stable)",
        dumps.len(),
        dumps.iter().map(|d| d.events.len()).sum::<usize>()
    );

    let timelines = merge_timelines(dumps);
    assert!(
        timelines.len() > 1000,
        "too few complete timelines: {}",
        timelines.len()
    );

    // Acceptance: phase attribution sums to within 5% of measured e2e.
    let mut worst_rel = 0f64;
    for t in &timelines {
        let e2e = (t.deliver_us - t.submit_us) as f64;
        let sum: u64 = t.phases.iter().sum();
        let rel = (sum as f64 - e2e).abs() / e2e;
        worst_rel = worst_rel.max(rel);
        assert!(
            rel <= 0.05,
            "trace {:#x}: phases sum {} vs e2e {} ({}%)",
            t.trace,
            sum,
            e2e,
            rel * 100.0
        );
    }
    println!(
        "{} complete timelines; worst |phase sum - e2e| = {:.3}% (limit 5%)\n",
        timelines.len(),
        worst_rel * 100.0
    );

    print_phase_table(&timelines);
    print_sample_timeline(&timelines);

    // Acceptance: the slow replica is flagged by the health detector on
    // at least one other replica (every replica measures its own peers;
    // the slow node never suspects itself).
    let mut suspected_by = Vec::new();
    for (i, snap) in obs.iter().enumerate() {
        if i == SLOW_NODE {
            continue;
        }
        let lag = snap
            .gauge_value(&format!("consensus.health.peer_lag_us.{SLOW_NODE}"))
            .unwrap_or(0);
        let suspected = snap
            .gauge_value("consensus.health.suspected_peers")
            .unwrap_or(0);
        println!(
            "node {i}: peer_lag_us.{SLOW_NODE} = {lag} µs, suspected_peers = {suspected}"
        );
        if suspected > 0 {
            suspected_by.push(i);
        }
    }
    let suspect_events: usize = dumps
        .iter()
        .flat_map(|d| &d.events)
        .filter(|e| e.kind == EventKind::Suspect && e.a == SLOW_NODE as u64)
        .count();
    assert!(
        !suspected_by.is_empty(),
        "slow replica {SLOW_NODE} was not suspected by any peer"
    );
    assert!(
        suspect_events > 0,
        "no Suspect flight events name replica {SLOW_NODE}"
    );
    println!(
        "replica {SLOW_NODE} suspected by nodes {suspected_by:?} ({suspect_events} suspect events)\n"
    );

    // Satellite: tracing overhead A/B on the threaded service, recorded
    // into BENCH_obs.json.
    let overhead = measure_overhead();

    let json = report_json(&config, &timelines, &suspected_by, suspect_events, overhead);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {} timelines to {out_path}", timelines.len()),
        Err(error) => {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
    }
}

fn print_phase_table(timelines: &[Timeline]) {
    println!("phase attribution over {} transactions (ms):", timelines.len());
    println!("  {:8} {:>9} {:>9} {:>9} {:>7}", "phase", "mean", "p50", "p90", "share");
    let e2e_total: u64 = timelines
        .iter()
        .map(|t| t.deliver_us - t.submit_us)
        .sum();
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        let mut values: Vec<u64> = timelines.iter().map(|t| t.phases[i]).collect();
        values.sort_unstable();
        let total: u64 = values.iter().sum();
        let mean = total as f64 / values.len() as f64 / 1000.0;
        let p50 = values[values.len() / 2] as f64 / 1000.0;
        let p90 = values[values.len() * 9 / 10] as f64 / 1000.0;
        let share = total as f64 / e2e_total as f64 * 100.0;
        println!("  {name:8} {mean:>9.2} {p50:>9.2} {p90:>9.2} {share:>6.1}%");
    }
    let mean_e2e = e2e_total as f64 / timelines.len() as f64 / 1000.0;
    println!("  {:8} {:>9.2}\n", "e2e", mean_e2e);
}

fn print_sample_timeline(timelines: &[Timeline]) {
    let Some(t) = timelines.get(timelines.len() / 2) else {
        return;
    };
    println!(
        "sample timeline (trace {:#x}, client {}, seq {}, cid {}, block {}):",
        t.trace, t.client, t.seq, t.cid, t.block
    );
    let mut at = t.submit_us;
    println!("  submit        @ {:>10} µs", at);
    let labels = ["propose", "write quorum", "decide", "sign done", "deliver"];
    for (label, delta) in labels.iter().zip(t.phases.iter()) {
        at += delta;
        println!("  {label:13} @ {at:>10} µs  (+{delta} µs)");
    }
    println!();
}

/// Re-executes this binary as `--throughput-probe` — without and with
/// `HLF_TRACE`, three interleaved pairs, median of each (single runs
/// swing ~±5% on a loaded box) — and folds the delta into
/// `BENCH_obs.json`. Returns `(off_tps, on_tps)` when all probes ran.
fn measure_overhead() -> Option<(f64, f64)> {
    let exe = std::env::current_exe().ok()?;
    let run = |trace: bool| -> Option<f64> {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--throughput-probe").env_remove("HLF_TRACE");
        if trace {
            cmd.env("HLF_TRACE", "1");
        }
        let output = cmd.output().ok()?;
        let stdout = String::from_utf8_lossy(&output.stdout);
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("PROBE_TPS "))
            .and_then(|v| v.trim().parse::<f64>().ok())
    };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    for _ in 0..3 {
        offs.push(run(false)?);
        ons.push(run(true)?);
    }
    let (off, on) = (median(offs), median(ons));
    let delta_pct = (off - on) / off * 100.0;
    println!(
        "tracing overhead probe (median of 3): {off:.0} tx/s off, {on:.0} tx/s on ({delta_pct:+.2}% delta)"
    );

    // Record the delta as a synthetic registry in BENCH_obs.json
    // (basis points, so the stable integer-gauge JSON keeps precision).
    let mut registries = std::fs::read_to_string("BENCH_obs.json")
        .ok()
        .and_then(|s| hlf_obs::from_json_many(&s).ok())
        .unwrap_or_default();
    registries.retain(|s| s.registry != "trace_overhead");
    registries.push(Snapshot {
        registry: "trace_overhead".to_string(),
        metrics: vec![
            MetricSnapshot {
                name: "bench.trace.delta_basis_points".to_string(),
                value: MetricValue::Gauge((delta_pct * 100.0).round() as i64),
            },
            MetricSnapshot {
                name: "bench.trace.off_tps".to_string(),
                value: MetricValue::Gauge(off.round() as i64),
            },
            MetricSnapshot {
                name: "bench.trace.on_tps".to_string(),
                value: MetricValue::Gauge(on.round() as i64),
            },
        ],
    });
    match std::fs::write("BENCH_obs.json", hlf_obs::to_json_many(&registries)) {
        Ok(()) => println!("recorded on/off delta in BENCH_obs.json\n"),
        Err(error) => eprintln!("failed to update BENCH_obs.json: {error}\n"),
    }
    Some((off, on))
}

/// Probe mode: drive the real threaded 4-node service for ~1.5 s and
/// print the delivered-envelope throughput. Whether traces ride along
/// is decided by `HLF_TRACE` in the environment.
fn throughput_probe() {
    let options = ServiceOptions::new(1)
        .with_block_size(10)
        .with_signing_threads(4)
        .with_tentative(true)
        .with_request_timeout_ms(60_000);
    let mut service = OrderingService::start(4, options);
    let mut frontend = service.frontend();

    let envelope = vec![0x5au8; 1024];
    let deadline = Instant::now() + Duration::from_millis(1500);
    let started = Instant::now();
    let mut delivered = 0u64;
    let mut in_flight = 0usize;
    while Instant::now() < deadline {
        while in_flight < 40 {
            frontend.submit(Bytes::from(envelope.clone()));
            in_flight += 1;
        }
        if let Some(block) = frontend.next_block(Duration::from_millis(100)) {
            delivered += block.envelopes.len() as u64;
            in_flight = in_flight.saturating_sub(block.envelopes.len());
        }
    }
    let tps = delivered as f64 / started.elapsed().as_secs_f64();
    println!("PROBE_TPS {tps:.1}");
    service.shutdown();
}

/// Stable JSON emit for `BENCH_trace.json`: integers only, fixed key
/// order, no whitespace — parse/re-emit is byte-identical.
fn report_json(
    config: &GeoConfig,
    timelines: &[Timeline],
    suspected_by: &[usize],
    suspect_events: usize,
    overhead: Option<(f64, f64)>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"config\":{{\"protocol\":\"bftsmart\",\"n\":4,\"f\":1,\"slow_replica\":{SLOW_NODE},\
\"slow_extra_ms\":{SLOW_EXTRA_MS},\"rate_per_frontend\":{},\"duration_s\":{},\"seed\":{}}}",
        config.rate_per_frontend as u64,
        config.duration.as_micros() / 1_000_000,
        config.seed
    ));
    out.push_str(",\"phases\":[");
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let total: u64 = timelines.iter().map(|t| t.phases[i]).sum();
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"total_us\":{total},\"mean_us\":{}}}",
            total / timelines.len() as u64
        ));
    }
    out.push(']');
    let suspected_list = suspected_by
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    out.push_str(&format!(
        ",\"suspicion\":{{\"slow_replica\":{SLOW_NODE},\"suspected_by\":[{suspected_list}],\
\"suspect_events\":{suspect_events}}}"
    ));
    if let Some((off, on)) = overhead {
        out.push_str(&format!(
            ",\"overhead\":{{\"off_tps\":{},\"on_tps\":{}}}",
            off.round() as i64,
            on.round() as i64
        ));
    }
    out.push_str(",\"transactions\":[");
    for (i, t) in timelines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace\":{},\"client\":{},\"seq\":{},\"cid\":{},\"block\":{},\
\"submit_us\":{},\"deliver_us\":{},\"relay_us\":{},\"write_us\":{},\"accept_us\":{},\
\"sign_us\":{},\"collect_us\":{}}}",
            t.trace,
            t.client,
            t.seq,
            t.cid,
            t.block,
            t.submit_us,
            t.deliver_us,
            t.phases[0],
            t.phases[1],
            t.phases[2],
            t.phases[3],
            t.phases[4]
        ));
    }
    out.push_str("]}");
    out
}
