//! **Real-socket cluster benchmark (`make bench-net`).**
//!
//! Measures the same saturated ordering workload twice:
//!
//! 1. **in-process** — the whole k = 4 pipelined cluster in one
//!    address space over the crossbeam hub (the configuration every
//!    earlier BENCH file used), and
//! 2. **tcp-4proc** — four `hlf_node` replica processes plus this
//!    process as a TCP frontend, all frames crossing real kernel
//!    sockets on localhost.
//!
//! Writes `BENCH_net.json` with throughput, p50/p99 latency, the
//! cross-backend ratio (acceptance floor: TCP ≥ 0.5× in-process), and
//! the send-coalescing counters scraped from each replica's obs
//! snapshot (`transport.net.frames_out` / `transport.net.writev_calls`
//! — frames-per-writev > 1 means the writev batching works, and
//! writev-calls-per-envelope is the syscall amortisation headline).
//!
//! A third phase re-runs the TCP cluster with every replica serving
//! its admin endpoint and the real `hlf_top` process scraping at 1 Hz
//! (metrics deltas, flight rings, live cross-process audit); the tx/s
//! delta against the unscraped run is the telemetry-plane overhead,
//! recorded in `BENCH_obs.json` and gated (<3%) by
//! `bench_summary --check`.
//!
//! `--smoke` runs a 60×-smaller workload, skips the in-process
//! baseline, asserts only liveness + delivery, and writes nothing —
//! CI's 4-process cluster smoke test.
//!
//! The `hlf_node` binary is found via `--node-bin`, `$HLF_NODE_BIN`,
//! or as a sibling of this executable (`hlf_node` / `bin_hlf_node`).

use hlf_transport::{PeerId, TcpConfig, TcpNetwork};
use hlf_wire::Bytes;
use ordering_core::frontend::Frontend;
use ordering_core::proc::connect_frontend_endpoint;
use ordering_core::service::{OrderingService, ServiceOptions};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Cluster size (replicas).
const N: usize = 4;
/// Fault threshold.
const F: usize = 1;
/// Frontend client id.
const FRONTEND_ID: u32 = 1001;
/// Shared cluster secret for link keys.
const SECRET: &str = "bench-net";
/// Envelope payload bytes (paper's 200-byte point).
const ENVELOPE_BYTES: usize = 200;
/// Envelopes ordered per measured phase.
const COUNT: u64 = 30_000;
/// Outstanding-envelope window (same as the LAN benches).
const WINDOW: u64 = 4_000;
/// Untimed warmup envelopes before the measured phase.
const WARMUP: u64 = 2_000;

fn options() -> ServiceOptions {
    // Mirrors hlf_node's service_options: both backends must run the
    // identical consensus/cutter configuration for a fair ratio. The
    // fixed block_size-10 cutter is the paper-style fig7 configuration
    // (no adaptive merging).
    ServiceOptions::new(F)
        .with_block_size(10)
        .with_signing_threads(4)
        .with_request_timeout_ms(60_000)
        .with_pipeline_depth(4)
        .with_flush_on_batch_end(true)
}

struct Measured {
    submitted: u64,
    delivered: u64,
    elapsed_s: f64,
    tx_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Orders `warmup` envelopes without timing anything, so connection
/// establishment / handshakes / first-batch effects stay out of the
/// measured window on both backends.
fn warm_up(frontend: &mut Frontend, warmup: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut delivered = 0u64;
    for i in 0..warmup {
        let mut payload = vec![0u8; ENVELOPE_BYTES];
        payload[..8].copy_from_slice(&i.to_le_bytes());
        frontend.submit(Bytes::from(payload));
    }
    while delivered < warmup && Instant::now() < deadline {
        if let Some(block) = frontend.next_block(Duration::from_millis(50)) {
            delivered += block.envelopes.len() as u64;
        }
    }
}

/// Drives `count` envelopes through `frontend` under a bounded window
/// and measures delivery throughput + per-envelope latency (single
/// frontend, so deliveries come back in submission order).
fn drive(frontend: &mut Frontend, count: u64, deadline: Duration) -> Measured {
    let mut in_flight: VecDeque<Instant> = VecDeque::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(count as usize);
    let (mut submitted, mut delivered) = (0u64, 0u64);
    let start = Instant::now();
    let deadline = start + deadline;
    let mut last_note = start;
    while delivered < count && Instant::now() < deadline {
        if last_note.elapsed() > Duration::from_secs(5) {
            eprintln!("bench_net: {submitted} submitted, {delivered} delivered");
            last_note = Instant::now();
        }
        while submitted < count && (submitted - delivered) < WINDOW {
            let mut payload = vec![0u8; ENVELOPE_BYTES];
            payload[..8].copy_from_slice(&submitted.to_le_bytes());
            frontend.submit(Bytes::from(payload));
            in_flight.push_back(Instant::now());
            submitted += 1;
        }
        if let Some(block) = frontend.next_block(Duration::from_millis(50)) {
            let now = Instant::now();
            for _ in 0..block.envelopes.len() {
                if let Some(at) = in_flight.pop_front() {
                    latencies_ms.push(now.duration_since(at).as_secs_f64() * 1e3);
                }
            }
            delivered += block.envelopes.len() as u64;
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Measured {
        submitted,
        delivered,
        elapsed_s,
        tx_s: delivered as f64 / elapsed_s.max(1e-9),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

/// Phase 1: the whole cluster in this process, hub transport.
fn run_in_process(count: u64) -> Measured {
    let mut service = OrderingService::start(N, options());
    let mut frontend = service.frontend();
    warm_up(&mut frontend, WARMUP);
    let result = drive(&mut frontend, count, Duration::from_secs(180));
    service.shutdown();
    result
}

/// Grabs `n` distinct free localhost ports from the kernel.
fn free_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind probe port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("probe addr"))
        .collect()
    // Listeners drop here; hlf_node/our frontend re-bind the ports.
}

fn find_bin(cli: Option<PathBuf>, env: &str, names: [&str; 2], what: &str) -> PathBuf {
    if let Some(path) = cli {
        return path;
    }
    if let Ok(path) = std::env::var(env) {
        return PathBuf::from(path);
    }
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().map(PathBuf::from).unwrap_or_default();
    for name in names {
        let candidate = dir.join(name);
        if candidate.exists() {
            return candidate;
        }
    }
    eprintln!("bench_net: cannot find the {what} binary (set {env})");
    std::process::exit(2);
}

fn node_bin(cli: Option<PathBuf>) -> PathBuf {
    find_bin(cli, "HLF_NODE_BIN", ["hlf_node", "bin_hlf_node"], "hlf_node")
}

fn top_bin() -> PathBuf {
    find_bin(None, "HLF_TOP_BIN", ["hlf_top", "bin_hlf_top"], "hlf_top")
}

/// Spawns replica `i` as a real OS process. Children hold a stdin
/// pipe: dropping it (or our exit) stops them.
fn spawn_replica(
    bin: &PathBuf,
    i: usize,
    addrs: &[SocketAddr],
    admin: Option<SocketAddr>,
    obs_path: &PathBuf,
    show_stderr: bool,
) -> Child {
    let mut cmd = Command::new(bin);
    cmd.arg("--role")
        .arg("replica")
        .arg("--id")
        .arg(i.to_string())
        .arg("--n")
        .arg(N.to_string())
        .arg("--f")
        .arg(F.to_string())
        .arg("--listen")
        .arg(addrs[i].to_string())
        .arg("--secret")
        .arg(SECRET)
        .arg("--obs-out")
        .arg(obs_path);
    if let Some(admin) = admin {
        cmd.arg("--admin-listen").arg(admin.to_string());
    }
    for (j, addr) in addrs.iter().enumerate() {
        let peer = if j < N {
            if j == i {
                continue;
            }
            format!("replica:{j}={addr}")
        } else {
            format!("client:{FRONTEND_ID}={addr}")
        };
        cmd.arg("--peer").arg(peer);
    }
    cmd.stdin(Stdio::piped()).stdout(Stdio::null()).stderr(if show_stderr {
        Stdio::inherit()
    } else {
        Stdio::null()
    });
    cmd.spawn().expect("spawn hlf_node replica")
}

/// Scrapes a metric value out of an obs snapshot dump, which renders
/// each metric as `{"name":"<key>","type":"counter","value":N}`.
fn scrape(src: &str, key: &str) -> Option<f64> {
    let name = format!("\"name\":\"{key}\"");
    let at = src.find(&name)? + name.len();
    let tail = src.get(at..)?;
    let value = tail.find("\"value\":")? + "\"value\":".len();
    let rest = tail.get(value..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest.get(..end)?.trim().parse().ok()
}

struct TcpRun {
    measured: Measured,
    frames_out: f64,
    writev_calls: f64,
    reconnects: f64,
    auth_failures: f64,
}

/// Phase 2: 4 replica processes + this process as TCP frontend. With
/// `scraper`, every replica also serves its admin endpoint and the
/// real `hlf_top` binary runs as a fifth process, scraping metrics
/// deltas + flight rings at 1 Hz and auditing cross-process
/// invariants live — the telemetry-plane overhead measurement.
fn run_tcp_cluster(bin: &PathBuf, count: u64, smoke_run: bool, scraper: Option<&PathBuf>) -> TcpRun {
    // One probe batch so consensus, frontend and admin ports are all
    // distinct: [0..N) consensus, [N] frontend, [N+1..] admin.
    let ports = free_ports(N + 1 + if scraper.is_some() { N } else { 0 });
    let addrs = ports[..N + 1].to_vec();
    let admin_addrs = &ports[N + 1..];
    let obs_paths: Vec<PathBuf> = (0..N)
        .map(|i| {
            std::env::temp_dir().join(format!("hlf_node_obs_{i}_{}.json", std::process::id()))
        })
        .collect();
    let mut children: Vec<Child> = (0..N)
        .map(|i| {
            spawn_replica(
                bin,
                i,
                &addrs,
                admin_addrs.get(i).copied(),
                &obs_paths[i],
                smoke_run,
            )
        })
        .collect();
    let mut top = scraper.map(|top_bin| {
        let mut cmd = Command::new(top_bin);
        cmd.args(["--secret", SECRET, "--interval-ms", "1000"])
            .args(["--n", &N.to_string(), "--f", &F.to_string()])
            .arg("--until-stdin-eof");
        for (i, admin) in admin_addrs.iter().enumerate() {
            cmd.arg("--node").arg(format!("replica:{i}={admin}"));
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        cmd.spawn().expect("spawn hlf_top scraper")
    });

    // Frontend endpoint in this process, over real sockets.
    let mut config = TcpConfig::new(
        PeerId::Client(FRONTEND_ID),
        addrs[N],
        SECRET.as_bytes(),
    );
    for (j, addr) in addrs.iter().enumerate().take(N) {
        config = config.with_peer(PeerId::replica(j as u32), *addr);
    }
    let network = TcpNetwork::bind(config).expect("bind frontend TCP endpoint");
    let mut frontend = connect_frontend_endpoint(FRONTEND_ID, N, &options(), network.endpoint());

    if !smoke_run {
        warm_up(&mut frontend, WARMUP);
    }
    let measured = drive(&mut frontend, count, Duration::from_secs(180));

    // Stop the scraper first (stdin EOF → final audit report). A
    // non-zero exit means the cross-process auditor saw violations.
    if let Some(child) = top.as_mut() {
        drop(child.stdin.take());
        let status = child.wait().expect("wait for hlf_top");
        assert!(
            status.success(),
            "hlf_top reported audit violations on a clean run"
        );
    }

    // Close the stdin pipes: replicas dump their obs snapshots and exit.
    for child in &mut children {
        drop(child.stdin.take());
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    for child in &mut children {
        while Instant::now() < deadline {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = child.kill();
        let _ = child.wait();
    }
    network.shutdown();

    // Aggregate the socket counters across the replicas' snapshots.
    let (mut frames_out, mut writev_calls, mut reconnects, mut auth_failures) =
        (0.0, 0.0, 0.0, 0.0);
    for path in &obs_paths {
        let json = std::fs::read_to_string(path).unwrap_or_default();
        frames_out += scrape(&json, "transport.net.frames_out").unwrap_or(0.0);
        writev_calls += scrape(&json, "transport.net.writev_calls").unwrap_or(0.0);
        reconnects += scrape(&json, "transport.net.reconnects").unwrap_or(0.0);
        auth_failures += scrape(&json, "transport.net.auth_failures").unwrap_or(0.0);
        let _ = std::fs::remove_file(path);
    }
    TcpRun {
        measured,
        frames_out,
        writev_calls,
        reconnects,
        auth_failures,
    }
}

/// Records the 1 Hz scrape overhead as a synthetic registry in
/// BENCH_obs.json (basis points, so the integer-gauge JSON keeps
/// precision), replacing any previous row — same shape as the
/// `trace_overhead` rows `trace_report` writes.
fn record_scrape_overhead(off_tps: f64, on_tps: f64, overhead_pct: f64) {
    use hlf_obs::{MetricSnapshot, MetricValue, Snapshot};
    let mut registries = std::fs::read_to_string("BENCH_obs.json")
        .ok()
        .and_then(|s| hlf_obs::from_json_many(&s).ok())
        .unwrap_or_default();
    registries.retain(|s| s.registry != "scrape_overhead");
    registries.push(Snapshot {
        registry: "scrape_overhead".to_string(),
        metrics: vec![
            MetricSnapshot {
                name: "bench.scrape.overhead_basis_points".to_string(),
                value: MetricValue::Gauge((overhead_pct * 100.0).round() as i64),
            },
            MetricSnapshot {
                name: "bench.scrape.off_tps".to_string(),
                value: MetricValue::Gauge(off_tps.round() as i64),
            },
            MetricSnapshot {
                name: "bench.scrape.on_tps".to_string(),
                value: MetricValue::Gauge(on_tps.round() as i64),
            },
        ],
    });
    match std::fs::write("BENCH_obs.json", hlf_obs::to_json_many(&registries)) {
        Ok(()) => println!("recorded scrape overhead in BENCH_obs.json"),
        Err(error) => eprintln!("failed to update BENCH_obs.json: {error}"),
    }
}

fn main() {
    let mut smoke = false;
    let mut bin_flag: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--node-bin" => bin_flag = args.next().map(PathBuf::from),
            other => {
                eprintln!("bench_net: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let bin = node_bin(bin_flag);

    if smoke {
        // CI smoke: tiny workload, liveness + delivery only.
        let run = run_tcp_cluster(&bin, 500, true, None);
        println!(
            "smoke: {} of {} envelopes ordered at {:.0} tx/s (p50 {:.1} ms), \
             {} frames / {} writevs, {} reconnects, {} auth failures",
            run.measured.delivered,
            run.measured.submitted,
            run.measured.tx_s,
            run.measured.p50_ms,
            run.frames_out,
            run.writev_calls,
            run.reconnects,
            run.auth_failures
        );
        assert_eq!(
            run.measured.delivered, 500,
            "4-process cluster failed to order the smoke workload"
        );
        assert_eq!(run.auth_failures, 0.0, "unexpected HMAC failures in smoke run");
        println!("SMOKE OK");
        return;
    }

    println!("## bench_net: in-process vs 4-process TCP cluster");
    println!("config: n={N} f={F} pipeline_depth=4 block_size=10 envelopes={COUNT} x {ENVELOPE_BYTES}B");

    let inproc = run_in_process(COUNT);
    println!(
        "in-process : {:>8.0} tx/s  p50 {:>6.2} ms  p99 {:>6.2} ms  ({} delivered in {:.1}s)",
        inproc.tx_s, inproc.p50_ms, inproc.p99_ms, inproc.delivered, inproc.elapsed_s
    );

    let tcp = run_tcp_cluster(&bin, COUNT, false, None);
    let ratio = tcp.measured.tx_s / inproc.tx_s.max(1e-9);
    let frames_per_writev = tcp.frames_out / tcp.writev_calls.max(1.0);
    let syscalls_per_envelope = tcp.writev_calls / tcp.measured.delivered.max(1) as f64;
    println!(
        "tcp-4proc  : {:>8.0} tx/s  p50 {:>6.2} ms  p99 {:>6.2} ms  ({} delivered in {:.1}s)",
        tcp.measured.tx_s,
        tcp.measured.p50_ms,
        tcp.measured.p99_ms,
        tcp.measured.delivered,
        tcp.measured.elapsed_s
    );
    println!(
        "ratio {ratio:.2}x | coalescing {frames_per_writev:.2} frames/writev \
         ({:.0} frames, {:.0} writevs) | {syscalls_per_envelope:.3} writevs/envelope | \
         {:.0} reconnects",
        tcp.frames_out, tcp.writev_calls, tcp.reconnects
    );

    let out = format!(
        "{{\n  \"config\": {{\"n\": {N}, \"f\": {F}, \"pipeline_depth\": 4, \"block_size\": 10, \
         \"envelope_bytes\": {ENVELOPE_BYTES}, \"count\": {COUNT}}},\n  \
         \"in_process\": {{\"ordered_tx_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n  \
         \"tcp_4proc\": {{\"ordered_tx_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"ratio_vs_in_process\": {ratio:.3}}},\n  \
         \"coalescing\": {{\"frames_out\": {:.0}, \"writev_calls\": {:.0}, \
         \"frames_per_writev\": {frames_per_writev:.3}, \
         \"writev_syscalls_per_envelope\": {syscalls_per_envelope:.4}}},\n  \
         \"lifecycle\": {{\"reconnects\": {:.0}, \"auth_failures\": {:.0}}}\n}}\n",
        inproc.tx_s,
        inproc.p50_ms,
        inproc.p99_ms,
        tcp.measured.tx_s,
        tcp.measured.p50_ms,
        tcp.measured.p99_ms,
        tcp.frames_out,
        tcp.writev_calls,
        tcp.reconnects,
        tcp.auth_failures,
    );
    std::fs::write("BENCH_net.json", &out).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");

    // Phase 3: the same saturated TCP cluster, this time with the
    // real `hlf_top` process scraping every replica's admin endpoint
    // at 1 Hz (metrics deltas + flight rings + live audit). The tx/s
    // difference against the unscraped run is the telemetry-plane
    // overhead, recorded in BENCH_obs.json and gated (<3%) by
    // bench_summary --check.
    let top = top_bin();
    println!("## scrape overhead: 1 Hz hlf_top against the saturated cluster");
    let scraped = run_tcp_cluster(&bin, COUNT, false, Some(&top));
    assert_eq!(
        scraped.measured.delivered, COUNT,
        "scraped TCP cluster lost envelopes"
    );
    let off = tcp.measured.tx_s;
    let on = scraped.measured.tx_s;
    let overhead_pct = (off - on) / off.max(1e-9) * 100.0;
    println!(
        "scraped    : {:>8.0} tx/s  p50 {:>6.2} ms  p99 {:>6.2} ms  \
         ({overhead_pct:+.2}% vs unscraped {off:.0} tx/s)",
        on, scraped.measured.p50_ms, scraped.measured.p99_ms
    );
    record_scrape_overhead(off, on, overhead_pct);

    // Acceptance: the real-socket cluster keeps >= 0.5x the in-process
    // number, and the writer actually coalesces under load.
    assert_eq!(tcp.measured.delivered, COUNT, "TCP cluster lost envelopes");
    assert!(
        ratio >= 0.5,
        "TCP throughput ratio {ratio:.2} fell below the 0.5x acceptance floor"
    );
    assert!(
        frames_per_writev > 1.0,
        "expected >1 frame per writev under load, got {frames_per_writev:.2}"
    );
}
