//! Ablation studies for the design choices DESIGN.md calls out — these
//! go *beyond* the paper's figures:
//!
//! * **ABL1** — frontend trust policy: collect `2f + 1` matching block
//!   copies without verification (paper default) vs verify signatures
//!   and accept after `f + 1` (paper footnote 8).
//! * **ABL2** — WHEAT decomposition: how much of WHEAT's latency win
//!   comes from weighted voting vs tentative execution.
//! * **ABL3** — checkpoint period: §5.2 argues the ordering service's
//!   tiny state makes frequent checkpoints nearly free.
//!
//! ```sh
//! cargo run --release -p bench --bin ablations
//! ```

use bench::{ktps, run_checkpoint_sweep_point, run_lan_throughput, LanConfig};
use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};
use std::time::Duration;

fn abl1_frontend_policy() {
    println!("## ABL1: frontend trust policy (4 orderers, 1 KiB envelopes, 8 receivers)");
    println!(
        "{:<28} {:>12} {:>12}",
        "policy", "ktrans/sec", "blocks/sec"
    );
    for (label, verify) in [("match 2f+1 (paper default)", false), ("verify, f+1 copies", true)] {
        let mut config = LanConfig::new(4, 1);
        config.envelope_size = 1024;
        config.receivers = 8;
        config.measure = Duration::from_secs(2);
        config.verify_frontends = verify;
        let result = run_lan_throughput(&config);
        println!(
            "{label:<28} {:>12} {:>12.0}",
            ktps(result.tx_per_sec),
            result.blocks_per_sec
        );
    }
    println!(
        "(Verification moves CPU cost to the frontends but needs f fewer\n\
         copies; on a WAN it also saves one block transmission.)\n"
    );
}

fn abl2_wheat_decomposition() {
    println!("## ABL2: WHEAT decomposition (5 nodes, 1 KiB envelopes, blocks of 10)");
    println!("{:<36} {:>14}", "variant", "avg median ms");
    let variants = [
        ("classic quorums, final delivery", false, false),
        ("weighted quorums only", true, false),
        ("tentative execution only", false, true),
        ("full WHEAT (weights + tentative)", true, true),
    ];
    for (label, weights, tentative) in variants {
        let mut config = GeoConfig::new(Protocol::Wheat); // 5-node placement
        config.weights_override = Some(weights);
        config.tentative_override = Some(tentative);
        config.duration = SimTime::from_secs(30);
        config.warmup = SimTime::from_secs(5);
        config.rate_per_frontend = 200.0;
        let result = run_geo_experiment(&config);
        let avg = result.frontends.iter().map(|f| f.median_ms).sum::<f64>()
            / result.frontends.len() as f64;
        println!("{label:<36} {avg:>14.0}");
    }
    println!(
        "(Tentative execution removes the ACCEPT round; weighted voting\n\
         lets the two fastest replicas complete quorums. The paper\n\
         evaluates only the combination.)\n"
    );
}

fn abl3_checkpoint_period() {
    println!("## ABL3: checkpoint period vs consensus throughput (4 nodes)");
    println!("{:>20} {:>14}", "checkpoint every", "ktrans/sec");
    for interval in [8u64, 64, 256, 2048] {
        let rate = run_checkpoint_sweep_point(4, 1, interval, Duration::from_secs(2));
        println!("{interval:>17} dec {:>14}", ktps(rate));
    }
    println!(
        "(§5.2: ordering-service state is ~32 bytes, so even aggressive\n\
         checkpointing costs almost nothing — the rows above should be\n\
         within noise of each other.)\n"
    );
}

fn abl4_double_signing() {
    println!("## ABL4: footnote-10 double signing (4 orderers, 40 B envelopes, blocks of 1)");
    println!("# blocks of 1 make the signature term of equation (1) the binding one");
    println!("{:<24} {:>12}", "mode", "ktrans/sec");
    for (label, double) in [("single signature", false), ("double signature", true)] {
        let mut config = LanConfig::new(4, 1);
        config.envelope_size = 40;
        // One envelope per block: TP_sign * 1 binds (otherwise the
        // consensus term hides the signing cost on this host, exactly
        // as equation (1) predicts).
        config.block_size = 1;
        config.receivers = 1;
        config.measure = Duration::from_secs(2);
        config.double_sign = double;
        let result = run_lan_throughput(&config);
        println!("{label:<24} {:>12}", ktps(result.tx_per_sec));
    }
    println!(
        "(Paper footnote 10: when HLF needs a second signature per block,\n\
         the TP_sign term of equation (1) halves.)\n"
    );
}

fn main() {
    println!("# Ablation benches (beyond the paper's figures)\n");
    abl1_frontend_policy();
    abl2_wheat_decomposition();
    abl3_checkpoint_period();
    abl4_double_signing();
}
