//! **`hlf-node`: one ordering-cluster member as one OS process.**
//!
//! Runs either a replica (consensus + block signing) or a frontend
//! (submit + collect workload driver) over the real-socket TCP
//! transport, so a 4-replica cluster is 4 kernel-scheduled processes
//! exchanging bytes through the loopback (or a real) network — the
//! deployment shape of the paper's §6.2 experiments.
//!
//! ```sh
//! # 4 replicas + a frontend driving 5000 envelopes (5 terminals):
//! hlf_node --role replica --id 0 --n 4 --listen 127.0.0.1:7100 \
//!   --peer replica:1=127.0.0.1:7101 --peer replica:2=127.0.0.1:7102 \
//!   --peer replica:3=127.0.0.1:7103 --peer client:1001=127.0.0.1:7110
//! # ... same for --id 1..3 (swap listen/peers) ...
//! hlf_node --role frontend --id 1001 --n 4 --listen 127.0.0.1:7110 \
//!   --peer replica:0=127.0.0.1:7100 --peer replica:1=127.0.0.1:7101 \
//!   --peer replica:2=127.0.0.1:7102 --peer replica:3=127.0.0.1:7103 \
//!   --count 5000
//! ```
//!
//! Flags may also come from a TOML file (`--config node.toml`; flat
//! `key = value` pairs plus a `[peers]` table); command-line flags win
//! over file values. A replica runs until stdin reaches EOF (so a
//! parent process stopping — or closing the pipe — stops the node) or
//! `--duration-s` elapses; on exit it writes its obs registry snapshot
//! (including the `transport.net.*` socket counters) to `--obs-out`.
//! With `--obs-interval-secs` the snapshot is also rewritten
//! periodically (atomic rename, so readers never see a torn file),
//! covering shutdown paths that skip the exit dump.
//!
//! With `--admin-port` (or `--admin-listen ADDR`) a replica also
//! serves the authenticated telemetry endpoint (`hlf_top` scrapes it
//! live: metrics snapshots/deltas, flight-recorder dumps, health).

use hlf_obs::{FlightRecorder, Registry};
use hlf_transport::{AdminServer, AdminSources, HealthReport, PeerId, TcpConfig, TcpNetwork};
use hlf_wire::Bytes;
use ordering_core::proc::{connect_frontend_endpoint, start_replica_endpoint_with_flight};
use ordering_core::service::ServiceOptions;
use std::collections::VecDeque;
use std::io::Read;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
struct NodeArgs {
    role: String,
    id: u32,
    n: usize,
    f: usize,
    listen: String,
    secret: String,
    peers: Vec<(PeerId, SocketAddr)>,
    block_size: usize,
    pipeline_depth: usize,
    signing_threads: usize,
    batch_max: usize,
    request_timeout_ms: u64,
    obs_out: Option<String>,
    obs_interval_secs: Option<u64>,
    admin_listen: Option<String>,
    admin_port: Option<u16>,
    out: Option<String>,
    duration_s: Option<u64>,
    // Frontend workload knobs.
    count: u64,
    envelope_bytes: usize,
    window: u64,
}

impl Default for NodeArgs {
    fn default() -> NodeArgs {
        NodeArgs {
            role: String::new(),
            id: 0,
            n: 4,
            f: 1,
            listen: "127.0.0.1:0".to_string(),
            secret: "hlf-cluster".to_string(),
            peers: Vec::new(),
            block_size: 10,
            pipeline_depth: 4,
            signing_threads: 4,
            batch_max: 400,
            request_timeout_ms: 60_000,
            obs_out: None,
            obs_interval_secs: None,
            admin_listen: None,
            admin_port: None,
            out: None,
            duration_s: None,
            count: 5_000,
            envelope_bytes: 200,
            window: 4_000,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("hlf_node: {msg}");
    std::process::exit(2);
}

/// Applies one `key = value` pair (from a flag or the TOML file).
fn apply(args: &mut NodeArgs, key: &str, value: &str) {
    let value = value.trim().trim_matches('"');
    let parse_num = |v: &str| -> u64 {
        v.parse()
            .unwrap_or_else(|_| die(&format!("invalid number for {key}: {v}")))
    };
    match key {
        "role" => args.role = value.to_string(),
        "id" => args.id = parse_num(value) as u32,
        "n" => args.n = parse_num(value) as usize,
        "f" => args.f = parse_num(value) as usize,
        "listen" => args.listen = value.to_string(),
        "secret" => args.secret = value.to_string(),
        "block-size" | "block_size" => args.block_size = parse_num(value) as usize,
        "pipeline-depth" | "pipeline_depth" => args.pipeline_depth = parse_num(value) as usize,
        "signing-threads" | "signing_threads" => args.signing_threads = parse_num(value) as usize,
        "batch-max" | "batch_max" => args.batch_max = parse_num(value) as usize,
        "request-timeout-ms" | "request_timeout_ms" => args.request_timeout_ms = parse_num(value),
        "obs-out" | "obs_out" => args.obs_out = Some(value.to_string()),
        "obs-interval-secs" | "obs_interval_secs" => {
            args.obs_interval_secs = Some(parse_num(value))
        }
        "admin-listen" | "admin_listen" => args.admin_listen = Some(value.to_string()),
        // Shorthand: same interface as --listen, on the given port.
        "admin-port" | "admin_port" => args.admin_port = Some(parse_num(value) as u16),
        "out" => args.out = Some(value.to_string()),
        "duration-s" | "duration_s" => args.duration_s = Some(parse_num(value)),
        "count" => args.count = parse_num(value),
        "envelope-bytes" | "envelope_bytes" => args.envelope_bytes = parse_num(value) as usize,
        "window" => args.window = parse_num(value),
        "peer" => {
            let Some((peer, addr)) = value.split_once('=') else {
                die(&format!("--peer wants PEER=ADDR, got {value}"));
            };
            args.peers.push((parse_peer(peer), parse_addr(addr)));
        }
        other => die(&format!("unknown option: {other}")),
    }
}

fn parse_peer(s: &str) -> PeerId {
    PeerId::parse(s.trim())
        .unwrap_or_else(|| die(&format!("invalid peer id {s} (want replica:N or client:N)")))
}

fn parse_addr(s: &str) -> SocketAddr {
    s.trim()
        .parse()
        .unwrap_or_else(|_| die(&format!("invalid socket address: {s}")))
}

/// Minimal TOML subset: `key = value` pairs, a `[peers]` table whose
/// entries are `"replica:0" = "127.0.0.1:7100"`, comments, blanks.
fn load_config(args: &mut NodeArgs, path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| die(&format!("cannot read config {path}: {err}")));
    let mut in_peers = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_peers = line == "[peers]";
            if !in_peers && line != "[node]" {
                die(&format!("unknown config section {line}"));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            die(&format!("config line is not key = value: {raw}"));
        };
        let key = key.trim().trim_matches('"');
        if in_peers {
            let addr = value.trim().trim_matches('"');
            args.peers.push((parse_peer(key), parse_addr(addr)));
        } else {
            apply(args, key, value);
        }
    }
}

fn parse_args() -> NodeArgs {
    let mut args = NodeArgs::default();
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let Some(key) = arg.strip_prefix("--") else {
            die(&format!("unexpected argument {arg}"));
        };
        let value = argv
            .next()
            .unwrap_or_else(|| die(&format!("--{key} wants a value")));
        if key == "config" {
            load_config(&mut args, &value);
        } else {
            flags.push((key.to_string(), value));
        }
    }
    // Flags override the config file.
    for (key, value) in &flags {
        apply(&mut args, key, value);
    }
    if args.role.is_empty() {
        die("--role replica|frontend is required");
    }
    args
}

fn service_options(args: &NodeArgs) -> ServiceOptions {
    // flush_on_batch_end guarantees the tail of a finite workload is
    // cut as soon as the final consensus batch lands (without it the
    // stale cut needs *further* decides, which never come once the
    // frontend drains its window). The fixed block cutter matches the
    // paper-style fig7 configuration.
    ServiceOptions::new(args.f)
        .with_block_size(args.block_size)
        .with_signing_threads(args.signing_threads)
        .with_request_timeout_ms(args.request_timeout_ms)
        .with_pipeline_depth(args.pipeline_depth)
        .with_flush_on_batch_end(true)
}

fn bind_network(args: &NodeArgs, id: PeerId, registry: Option<Arc<Registry>>) -> TcpNetwork {
    let mut config = TcpConfig::new(id, parse_addr(&args.listen), args.secret.as_bytes());
    config.peers = args.peers.clone();
    if let Some(registry) = registry {
        config = config.with_registry(registry);
    }
    TcpNetwork::bind(config)
        .unwrap_or_else(|err| die(&format!("cannot bind {}: {err}", args.listen)))
}

/// Writes an obs snapshot via tmp-file + rename, so a concurrent
/// reader (hlf_top, a tailing script) never observes a torn file.
fn write_obs_atomic(path: &str, json: &str) {
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(err) = result {
        eprintln!("hlf_node: cannot write {path}: {err}");
    }
}

/// Where the admin endpoint should listen: `--admin-listen` verbatim,
/// or `--admin-port` on the same interface as `--listen`.
fn admin_addr(args: &NodeArgs) -> Option<SocketAddr> {
    if let Some(listen) = &args.admin_listen {
        return Some(parse_addr(listen));
    }
    args.admin_port.map(|port| {
        let mut addr = parse_addr(&args.listen);
        addr.set_port(port);
        addr
    })
}

fn run_replica(args: &NodeArgs) {
    let registry = Registry::new(format!("node-{}", args.id));
    let network = bind_network(args, PeerId::Replica(args.id), Some(Arc::clone(&registry)));
    eprintln!(
        "hlf_node: replica {} of {} listening on {}",
        args.id,
        args.n,
        network.local_addr()
    );
    let admin_listen = admin_addr(args);
    // The flight ring exists whenever someone can read it: the admin
    // endpoint (remote scrapes) or HLF_TRACE (local dumps).
    let flight = (admin_listen.is_some() || hlf_obs::trace_enabled())
        .then(|| Arc::new(FlightRecorder::new(format!("node-{}", args.id))));
    let handle = start_replica_endpoint_with_flight(
        args.id as usize,
        args.n,
        &service_options(args),
        network.endpoint(),
        Arc::clone(&registry),
        flight.clone(),
    );

    let started = Instant::now();
    let admin = admin_listen.map(|addr| {
        let stats = handle.stats_arc();
        let health_registry = Arc::clone(&registry);
        let sources = AdminSources {
            registry: Arc::clone(&registry),
            flight,
            health: Arc::new(move || HealthReport {
                regency: health_registry
                    .counter("consensus.replica.regency_changes")
                    .get(),
                window: health_registry.gauge("consensus.pipeline.window").get().max(0) as u64,
                frontier: stats.last_cid(),
                suspected: health_registry
                    .gauge("consensus.health.suspected_peers")
                    .get()
                    .max(0) as u64,
                decided: stats.decided(),
                uptime_us: started.elapsed().as_micros() as u64,
            }),
        };
        let server =
            AdminServer::bind(PeerId::Replica(args.id), addr, args.secret.as_bytes(), sources)
                .unwrap_or_else(|err| die(&format!("cannot bind admin {addr}: {err}")));
        eprintln!("hlf_node: admin endpoint on {}", server.local_addr());
        server
    });

    // Periodic snapshot dumps so crashes / kills still leave a recent
    // obs file behind (the exit-path dump below only covers clean
    // shutdowns).
    let stop = Arc::new(AtomicBool::new(false));
    let dumper = args.obs_out.clone().zip(args.obs_interval_secs).map(
        |(path, secs)| {
            let dump_registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let interval = Duration::from_secs(secs.max(1));
                let mut next = Instant::now() + interval;
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(100));
                    if Instant::now() >= next {
                        write_obs_atomic(&path, &dump_registry.snapshot().to_json());
                        next = Instant::now() + interval;
                    }
                }
            })
        },
    );

    // Park until the parent closes stdin (or the duration elapses).
    match args.duration_s {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    stop.store(true, Ordering::Release);
    if let Some(thread) = dumper {
        let _ = thread.join();
    }
    if let Some(path) = &args.obs_out {
        write_obs_atomic(path, &registry.snapshot().to_json());
    }
    if let Some(server) = admin {
        server.shutdown();
    }
    handle.shutdown();
    network.shutdown();
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

fn run_frontend(args: &NodeArgs) {
    let registry = Registry::new(format!("frontend-{}", args.id));
    let network = bind_network(args, PeerId::Client(args.id), Some(Arc::clone(&registry)));
    eprintln!(
        "hlf_node: frontend {} listening on {}",
        args.id,
        network.local_addr()
    );
    let mut frontend = connect_frontend_endpoint(
        args.id,
        args.n,
        &service_options(args),
        network.endpoint(),
    );

    // Submit `count` envelopes under a bounded outstanding window,
    // collecting per-envelope latency from block deliveries (a single
    // frontend's envelopes come back in submission order).
    let size = args.envelope_bytes.max(16);
    let mut in_flight: VecDeque<Instant> = VecDeque::new();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(args.count as usize);
    let mut submitted = 0u64;
    let mut delivered = 0u64;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(args.duration_s.unwrap_or(120));
    while delivered < args.count && Instant::now() < deadline {
        while submitted < args.count && (submitted - delivered) < args.window {
            let mut payload = vec![0u8; size];
            payload[..8].copy_from_slice(&submitted.to_le_bytes());
            frontend.submit(Bytes::from(payload));
            in_flight.push_back(Instant::now());
            submitted += 1;
        }
        if let Some(block) = frontend.next_block(Duration::from_millis(50)) {
            let now = Instant::now();
            for _ in 0..block.envelopes.len() {
                if let Some(at) = in_flight.pop_front() {
                    latencies_ms.push(now.duration_since(at).as_secs_f64() * 1e3);
                }
            }
            delivered += block.envelopes.len() as u64;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let json = format!(
        "{{\"role\": \"frontend\", \"submitted\": {submitted}, \"delivered\": {delivered}, \
         \"elapsed_s\": {elapsed:.3}, \"ordered_tx_s\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        delivered as f64 / elapsed.max(1e-9),
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 99.0),
    );
    match &args.out {
        Some(path) => {
            std::fs::write(path, &json)
                .unwrap_or_else(|err| die(&format!("cannot write {path}: {err}")));
        }
        None => println!("{json}"),
    }
    if let Some(path) = &args.obs_out {
        write_obs_atomic(path, &registry.snapshot().to_json());
    }
    network.shutdown();
    if delivered < args.count {
        eprintln!(
            "hlf_node: frontend timed out: {delivered}/{} envelopes delivered",
            args.count
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    match args.role.as_str() {
        "replica" => run_replica(&args),
        "frontend" => run_frontend(&args),
        other => die(&format!("unknown role {other} (want replica or frontend)")),
    }
}
