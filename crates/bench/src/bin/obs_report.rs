//! Boots a 4-node ordering service with tentative execution, drives a
//! couple of seconds of traffic through a frontend, then dumps every
//! obs registry — consensus phase timings, SMR node/client metrics,
//! block-cutter and signing-pool metrics, frontend collection rounds —
//! as text to stdout and as a stable JSON snapshot to `BENCH_obs.json`.
//!
//! ```sh
//! cargo run --release -p bench --bin obs_report              # writes BENCH_obs.json
//! cargo run --release -p bench --bin obs_report -- out.json  # custom path
//! ```

use bench::print_phase_breakdown;
use hlf_wire::Bytes;
use ordering_core::service::{OrderingService, ServiceOptions};
use std::time::{Duration, Instant};

const ENVELOPE_SIZE: usize = 1024;
const WAVE: usize = 40;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    let options = ServiceOptions::new(1)
        .with_block_size(10)
        .with_signing_threads(4)
        .with_tentative(true)
        .with_request_timeout_ms(60_000);
    let mut service = OrderingService::start(4, options);
    let mut frontend = service.frontend();

    println!("# obs_report: 4 orderers, f=1, tentative execution, blocks of 10");
    println!("# driving ~2 s of 1 KiB envelopes through one frontend...\n");

    // Closed-ish loop: keep a wave of envelopes in flight, drain blocks
    // as they come back, for about two seconds.
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut submitted = 0u64;
    let mut delivered = 0u64;
    let mut in_flight = 0usize;
    while Instant::now() < deadline {
        while in_flight < WAVE {
            frontend.submit(Bytes::from(vec![0x5au8; ENVELOPE_SIZE]));
            submitted += 1;
            in_flight += 1;
        }
        if let Some(block) = frontend.next_block(Duration::from_millis(100)) {
            delivered += block.envelopes.len() as u64;
            in_flight = in_flight.saturating_sub(block.envelopes.len());
        }
    }
    // Drain what is still in flight so the histograms cover whole
    // request lifecycles.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while delivered < submitted {
        let now = Instant::now();
        if now >= drain_deadline {
            break;
        }
        match frontend.next_block(drain_deadline - now) {
            Some(block) => delivered += block.envelopes.len() as u64,
            None => break,
        }
    }
    println!("submitted {submitted} envelopes, got back {delivered} in blocks\n");

    let snapshots = service.obs_snapshots();

    for snapshot in &snapshots {
        println!("{}", snapshot.to_text());
    }

    print_phase_breakdown(&snapshots);

    let json = hlf_obs::to_json_many(&snapshots);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {} registries to {out_path}", snapshots.len()),
        Err(error) => {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
    }

    service.shutdown();
}
