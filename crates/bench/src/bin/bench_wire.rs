//! Emits `BENCH_wire.json`: before/after cost of the message path,
//! measured on *this* machine.
//!
//! Unlike `bench_crypto_json` (which keeps reference algorithms
//! in-tree), the zero-copy work changes the *shape* of the whole
//! pipeline, so the honest comparison is binary-vs-binary: this one
//! source file compiles against both the pre-PR and the current rlibs
//! (it only touches APIs that exist unchanged on both sides), and the
//! two runs are merged with `--baseline`:
//!
//! ```sh
//! # 1. built against the pre-PR libraries:
//! bench_wire --out /tmp/wire_before.json
//! # 2. built against the current libraries:
//! bench_wire --baseline /tmp/wire_before.json --out BENCH_wire.json
//! ```
//!
//! Three measurement groups:
//!  * heap allocations (count and KiB) per *ordered* envelope — the
//!    full client → frontend → consensus → block → delivery pipeline,
//!    counted across every thread by a wrapping global allocator;
//!  * block encode/decode nanoseconds and allocations per envelope;
//!  * end-to-end Fig.-7-style LAN throughput (tx/s, median of 3).

use bench::{run_lan_throughput, LanConfig};
use hlf_crypto::Hash256;
use hlf_fabric::block::Block;
use ordering_core::service::{OrderingService, ServiceOptions};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation on every thread is tallied.
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the atomic counters allocate
// nothing, so `GlobalAlloc`'s no-reentrancy and layout contracts are
// exactly `System`'s own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded
    // unchanged to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior `System` allocation via
    // this allocator, so forwarding to `System.dealloc` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same pass-through contract as `alloc`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: `ptr`/`layout` describe a live `System` block; `new_size`
    // is forwarded unchanged, so `System.realloc`'s contract holds.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), ALLOC_BYTES.load(Ordering::SeqCst))
}

// ---------------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------------

const ENVELOPE_BYTES: usize = 200;
const BLOCK_SIZE: usize = 100;
/// The e2e point uses the paper's 4 KiB envelopes and a fan-out of 8
/// receiver frontends — the configuration where wire copies dominate.
const E2E_ENVELOPE_BYTES: usize = 4096;
const E2E_RECEIVERS: usize = 8;

fn payload(i: usize) -> Vec<u8> {
    let mut body = vec![0u8; ENVELOPE_BYTES];
    body[..8].copy_from_slice(&(i as u64).to_le_bytes());
    body
}

/// Median-of-3 timing runs, nanoseconds per op.
fn time_ns(iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        op();
    }
    let mut runs = [0.0f64; 3];
    for slot in &mut runs {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        *slot = start.elapsed().as_secs_f64() / iters as f64 * 1e9;
    }
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[1]
}

/// Allocations (count, bytes) per ordered envelope across the whole
/// in-process cluster: 4 nodes, f = 1, 200-byte envelopes, blocks of
/// 100, measured after a warm-up batch so pools and caches are primed.
fn measure_ordered_envelope_allocs() -> (f64, f64) {
    let mut service = OrderingService::start(
        4,
        ServiceOptions::new(1)
            .with_block_size(BLOCK_SIZE)
            .with_signing_threads(1)
            .with_request_timeout_ms(60_000),
    );
    let mut frontend = service.frontend();
    let timeout = Duration::from_secs(30);

    // Warm-up: fills the signing pool, reply caches, and (on the
    // current libraries) the transport buffer pool.
    let warm: Vec<_> = (0..200).map(|i| payload(i).into()).collect();
    let blocks = OrderingService::order_all(&mut frontend, warm, timeout);
    assert!(!blocks.is_empty(), "warm-up ordered no blocks");

    const MEASURED: usize = 500;
    let batch: Vec<_> = (0..MEASURED).map(|i| payload(1000 + i).into()).collect();
    let (allocs0, bytes0) = alloc_snapshot();
    let blocks = OrderingService::order_all(&mut frontend, batch, timeout);
    let (allocs1, bytes1) = alloc_snapshot();
    let ordered: usize = blocks.iter().map(|b| b.envelopes.len()).sum();
    assert!(
        ordered >= MEASURED,
        "ordered only {ordered} of {MEASURED} envelopes"
    );
    service.shutdown();

    let per_env = (allocs1 - allocs0) as f64 / ordered as f64;
    let kib_per_env = (bytes1 - bytes0) as f64 / ordered as f64 / 1024.0;
    (per_env, kib_per_env)
}

/// Block encode/decode: ns and allocations per envelope for a
/// 100-envelope block of 200-byte envelopes.
fn measure_block_codec() -> (f64, f64, f64, f64) {
    let envelopes: Vec<_> = (0..BLOCK_SIZE).map(|i| payload(i).into()).collect();
    let block = Block::build(1, Hash256::ZERO, envelopes);
    let encoded = hlf_wire::to_bytes(&block);

    const ITERS: u32 = 2000;
    let encode_ns = time_ns(ITERS, || {
        black_box(hlf_wire::to_bytes(black_box(&block)));
    }) / BLOCK_SIZE as f64;
    let decode_ns = time_ns(ITERS, || {
        black_box(hlf_wire::from_bytes::<Block>(black_box(&encoded)).unwrap());
    }) / BLOCK_SIZE as f64;

    let (a0, _) = alloc_snapshot();
    for _ in 0..ITERS {
        black_box(hlf_wire::to_bytes(black_box(&block)));
    }
    let (a1, _) = alloc_snapshot();
    for _ in 0..ITERS {
        black_box(hlf_wire::from_bytes::<Block>(black_box(&encoded)).unwrap());
    }
    let (a2, _) = alloc_snapshot();

    let encode_allocs = (a1 - a0) as f64 / ITERS as f64;
    let decode_allocs = (a2 - a1) as f64 / ITERS as f64;
    (encode_ns, decode_ns, encode_allocs, decode_allocs)
}

/// Fig.-7-style saturated LAN throughput, median of 3 windows.
fn measure_e2e_tx_per_sec() -> f64 {
    let mut config = LanConfig::new(4, 1);
    config.block_size = BLOCK_SIZE;
    config.envelope_size = E2E_ENVELOPE_BYTES;
    config.receivers = E2E_RECEIVERS;
    config.measure = Duration::from_secs(3);
    let mut rates: Vec<f64> = (0..3)
        .map(|_| run_lan_throughput(&config).tx_per_sec)
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates[1]
}

// ---------------------------------------------------------------------------
// Raw-run JSON (flat) and the merged before/after report
// ---------------------------------------------------------------------------

struct Raw {
    allocs_per_env: f64,
    alloc_kib_per_env: f64,
    encode_ns_per_env: f64,
    decode_ns_per_env: f64,
    encode_allocs_per_block: f64,
    decode_allocs_per_block: f64,
    tx_per_sec: f64,
}

impl Raw {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"allocs_per_env\": {:.2},\n  \"alloc_kib_per_env\": {:.2},\n  \
             \"encode_ns_per_env\": {:.1},\n  \"decode_ns_per_env\": {:.1},\n  \
             \"encode_allocs_per_block\": {:.1},\n  \"decode_allocs_per_block\": {:.1},\n  \
             \"tx_per_sec\": {:.1}\n}}\n",
            self.allocs_per_env,
            self.alloc_kib_per_env,
            self.encode_ns_per_env,
            self.decode_ns_per_env,
            self.encode_allocs_per_block,
            self.decode_allocs_per_block,
            self.tx_per_sec,
        )
    }
}

/// Pulls `"key": <number>` out of a flat JSON object; good enough for
/// the files this binary writes itself (the workspace deliberately has
/// no serde).
fn json_number(text: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("baseline file is missing {needle}"));
    let rest = &text[at + needle.len()..];
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .expect("malformed baseline: no ':' after key")
        .trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("malformed baseline number")
}

fn parse_raw(text: &str) -> Raw {
    Raw {
        allocs_per_env: json_number(text, "allocs_per_env"),
        alloc_kib_per_env: json_number(text, "alloc_kib_per_env"),
        encode_ns_per_env: json_number(text, "encode_ns_per_env"),
        decode_ns_per_env: json_number(text, "decode_ns_per_env"),
        encode_allocs_per_block: json_number(text, "encode_allocs_per_block"),
        decode_allocs_per_block: json_number(text, "decode_allocs_per_block"),
        tx_per_sec: json_number(text, "tx_per_sec"),
    }
}

fn merged_report(before: &Raw, after: &Raw) -> String {
    struct Row {
        name: &'static str,
        before: f64,
        after: f64,
        // true when bigger is better (throughput); false for costs
        higher_is_better: bool,
        precision: usize,
    }
    let rows = [
        Row {
            name: "allocs_per_ordered_envelope",
            before: before.allocs_per_env,
            after: after.allocs_per_env,
            higher_is_better: false,
            precision: 2,
        },
        Row {
            name: "alloc_kib_per_ordered_envelope",
            before: before.alloc_kib_per_env,
            after: after.alloc_kib_per_env,
            higher_is_better: false,
            precision: 2,
        },
        Row {
            name: "block_encode_ns_per_envelope",
            before: before.encode_ns_per_env,
            after: after.encode_ns_per_env,
            higher_is_better: false,
            precision: 1,
        },
        Row {
            name: "block_decode_ns_per_envelope",
            before: before.decode_ns_per_env,
            after: after.decode_ns_per_env,
            higher_is_better: false,
            precision: 1,
        },
        Row {
            name: "block_encode_allocs",
            before: before.encode_allocs_per_block,
            after: after.encode_allocs_per_block,
            higher_is_better: false,
            precision: 1,
        },
        Row {
            name: "block_decode_allocs",
            before: before.decode_allocs_per_block,
            after: after.decode_allocs_per_block,
            higher_is_better: false,
            precision: 1,
        },
        Row {
            name: "e2e_tx_per_sec",
            before: before.tx_per_sec,
            after: after.tx_per_sec,
            higher_is_better: true,
            precision: 1,
        },
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"wire_zero_copy\",\n");
    out.push_str(
        "  \"method\": \"same source, same machine: 'before' compiled against the \
         pre-PR libraries, 'after' against the current ones\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": \"n=4 f=1, blocks of {BLOCK_SIZE}; allocs/codec at \
         {ENVELOPE_BYTES}-byte envelopes, e2e at {E2E_ENVELOPE_BYTES}-byte envelopes with \
         {E2E_RECEIVERS} receivers\",\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = if row.higher_is_better {
            row.after / row.before
        } else {
            row.before / row.after
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"before\": {:.p$}, \"after\": {:.p$}, \
             \"speedup\": {:.2}}}{}\n",
            row.name,
            row.before,
            row.after,
            speedup,
            if i + 1 == rows.len() { "" } else { "," },
            p = row.precision,
        ));
    }
    out.push_str("  ],\n");
    let alloc_cut = 100.0 * (1.0 - after.allocs_per_env / before.allocs_per_env);
    let e2e_gain = 100.0 * (after.tx_per_sec / before.tx_per_sec - 1.0);
    out.push_str(&format!(
        "  \"acceptance\": {{\"alloc_reduction_pct\": {alloc_cut:.1}, \
         \"e2e_gain_pct\": {e2e_gain:.1}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline: Option<String> = None;
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other}"),
        }
    }

    // Codec timings first, while the process is still single-threaded
    // (the service benchmarks leave worker threads winding down).
    eprintln!("measuring block encode/decode...");
    let (encode_ns, decode_ns, encode_allocs, decode_allocs) = measure_block_codec();
    eprintln!("  encode {encode_ns:.0} ns/env, decode {decode_ns:.0} ns/env");

    eprintln!("measuring ordered-envelope allocations...");
    let (allocs_per_env, alloc_kib_per_env) = measure_ordered_envelope_allocs();
    eprintln!("  {allocs_per_env:.1} allocs, {alloc_kib_per_env:.1} KiB per envelope");

    eprintln!("measuring e2e throughput (3 windows)...");
    let tx_per_sec = measure_e2e_tx_per_sec();
    eprintln!("  {tx_per_sec:.0} tx/s");

    let raw = Raw {
        allocs_per_env,
        alloc_kib_per_env,
        encode_ns_per_env: encode_ns,
        decode_ns_per_env: decode_ns,
        encode_allocs_per_block: encode_allocs,
        decode_allocs_per_block: decode_allocs,
        tx_per_sec,
    };

    let report = match baseline {
        None => raw.to_json(),
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            merged_report(&parse_raw(&text), &raw)
        }
    };
    print!("{report}");
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write output file");
        eprintln!("wrote {path}");
    }
}
