//! **Equation (1)**: the paper's peak-throughput bound
//!
//! ```text
//! TP_os(bs, es, r)  <=  min( TP_sign * bs ,  TP_bftsmart(bs, es, r) )
//! ```
//!
//! i.e. the ordering service can go no faster than either the rate at
//! which one node signs block headers (times envelopes per block) or
//! the rate at which BFT-SMaRt orders envelopes. This harness measures
//! all three quantities on the same host and checks the inequality.
//!
//! ```sh
//! cargo run --release -p bench --bin eq1_bound_check
//! ```

use bench::{ktps, paper_signing_threads, run_lan_throughput, run_raw_consensus_throughput, LanConfig};
use hlf_wire::Bytes;
use hlf_crypto::ecdsa::SigningKey;
use hlf_crypto::sha256::Hash256;
use hlf_fabric::block::Block;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-node aggregate signing rate with the paper's worker count.
fn measure_tp_sign() -> f64 {
    let threads = paper_signing_threads();
    let stop = Arc::new(AtomicBool::new(false));
    let signed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let signed = Arc::clone(&signed);
            std::thread::spawn(move || {
                let key = SigningKey::from_seed(format!("eq1-{w}").as_bytes());
                let envelopes: Vec<Bytes> = (0..10).map(|i| Bytes::from(vec![i as u8; 8])).collect();
                let mut number = 1u64;
                let mut prev = Hash256::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    let mut block = Block::build(number, prev, envelopes.clone());
                    block.sign(w as u32, &key);
                    prev = block.header_hash();
                    number += 1;
                    signed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let start_count = signed.load(Ordering::Relaxed);
    let start = Instant::now();
    std::thread::sleep(Duration::from_secs(2));
    let elapsed = start.elapsed();
    let count = signed.load(Ordering::Relaxed) - start_count;
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        let _ = worker.join();
    }
    count as f64 / elapsed.as_secs_f64()
}

fn main() {
    println!("# Equation (1) bound check: TP_os <= min(TP_sign * bs, TP_bftsmart)");
    let tp_sign = measure_tp_sign();
    println!(
        "TP_sign  = {:.0} block signatures/sec ({} signer threads)\n",
        tp_sign,
        paper_signing_threads()
    );

    println!(
        "{:>9} {:>9} {:>14} {:>14} {:>14} {:>8}",
        "blk size", "env size", "TP_sign*bs", "TP_bftsmart", "TP_os", "holds?"
    );
    let mut all_hold = true;
    for (block_size, envelope_size) in [(10usize, 40usize), (10, 1024), (100, 40), (100, 1024)] {
        let tp_bftsmart =
            run_raw_consensus_throughput(4, 1, envelope_size, Duration::from_secs(2));
        let mut config = LanConfig::new(4, 1);
        config.block_size = block_size;
        config.envelope_size = envelope_size;
        config.receivers = 1;
        config.measure = Duration::from_secs(2);
        let tp_os = run_lan_throughput(&config).tx_per_sec;

        let sign_bound = tp_sign * block_size as f64;
        let bound = sign_bound.min(tp_bftsmart);
        // Allow 15% measurement slack: the three quantities come from
        // separate runs under different contention.
        let holds = tp_os <= bound * 1.15;
        all_hold &= holds;
        println!(
            "{block_size:>9} {envelope_size:>9} {:>13}k {:>13}k {:>13}k {:>8}",
            ktps(sign_bound),
            ktps(tp_bftsmart),
            ktps(tp_os),
            if holds { "yes" } else { "NO" }
        );
    }
    println!(
        "\nbound {} across all measured configurations",
        if all_hold { "holds" } else { "VIOLATED" }
    );
    println!(
        "(The paper derives the same bound in §6.1 and confirms it in §6.2:\n\
         at blocks of 10 the signature term binds for small envelopes; at\n\
         blocks of 100 the consensus term binds.)"
    );
}
