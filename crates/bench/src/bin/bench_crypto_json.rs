//! Emits `BENCH_crypto.json`: before/after rates for the ECDSA fast
//! paths, measured on *this* machine.
//!
//! "Before" numbers come from the verified reference paths kept
//! in-tree (`Point::mul_reference`, `SigningKey::sign_digest_reference`,
//! `VerifyingKey::verify_digest_reference`) — the exact *algorithms* the
//! seed implementation used — so the comparison is same-binary,
//! same-machine, same-flags. Note the reference paths still run faster
//! here than in the seed binary, because the field arithmetic
//! underneath them (P-256-specialised Montgomery rounds, dedicated
//! squaring, branch-free modular add/sub) improved too; the committed
//! JSON additionally records the seed binary's absolute rates measured
//! on the same machine for the end-to-end speedup.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_crypto_json   # or: make bench-crypto
//! ```

use hlf_crypto::bignum::U256;
use hlf_crypto::ecdsa::SigningKey;
use hlf_crypto::p256::Point;
use hlf_crypto::sha256::sha256;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-3 timing runs, microseconds per op.
fn time_us(iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        op();
    }
    let mut runs = [0.0f64; 3];
    for slot in &mut runs {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        *slot = start.elapsed().as_secs_f64() / iters as f64 * 1e6;
    }
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[1]
}

struct Row {
    name: &'static str,
    before_us: f64,
    after_us: f64,
}

fn main() {
    let key = SigningKey::from_seed(b"bench-ecdsa");
    let digest = sha256(b"block header");
    let signature = key.sign_digest(&digest);
    let vk = *key.verifying_key();
    let k = U256::from_hex("7a1b3c5d9e8f70615243342516070899aabbccddeeff00112233445566778899")
        .unwrap();
    let u1 = U256::from_hex("3344556677889900aabbccddeeff00117a1b3c5d9e8f7061524334251607a899")
        .unwrap();
    let q = *vk.point();
    Point::mul_base(&k); // build the comb table outside the timing loops

    eprintln!("measuring (median of 3 runs per row)...");
    let rows = [
        Row {
            name: "p256_mul_base",
            before_us: time_us(500, || {
                black_box(Point::generator().mul_reference(black_box(&k)));
            }),
            after_us: time_us(2000, || {
                black_box(Point::mul_base(black_box(&k)));
            }),
        },
        Row {
            name: "p256_mul",
            before_us: time_us(500, || {
                black_box(q.mul_reference(black_box(&k)));
            }),
            after_us: time_us(500, || {
                black_box(q.mul(black_box(&k)));
            }),
        },
        Row {
            name: "p256_dual_scalar_mul",
            before_us: time_us(250, || {
                // The seed verify shape: two full scalar muls + add.
                black_box(
                    Point::generator()
                        .mul_reference(black_box(&u1))
                        .add(&q.mul_reference(black_box(&k))),
                );
            }),
            after_us: time_us(500, || {
                black_box(Point::lincomb(black_box(&u1), &q, black_box(&k)));
            }),
        },
        Row {
            name: "ecdsa_sign",
            before_us: time_us(500, || {
                black_box(key.sign_digest_reference(black_box(&digest)));
            }),
            after_us: time_us(1000, || {
                black_box(key.sign_digest(black_box(&digest)));
            }),
        },
        Row {
            name: "ecdsa_verify",
            before_us: time_us(250, || {
                vk.verify_digest_reference(black_box(&digest), black_box(&signature))
                    .unwrap();
            }),
            after_us: time_us(500, || {
                vk.verify_digest(black_box(&digest), black_box(&signature))
                    .unwrap();
            }),
        },
    ];

    // Hand-rolled JSON: the workspace deliberately has no serde_json.
    let mut out = String::from("{\n");
    out.push_str(
        "  \"description\": \"P-256 fast paths (fixed-base comb, windowed affine tables, \
         Strauss-Shamir) vs the in-tree double-and-add reference; same binary, same machine\",\n",
    );
    out.push_str("  \"unit\": \"microseconds per operation\",\n");
    out.push_str("  \"seed_binary\": {\n");
    out.push_str(
        "    \"note\": \"absolute rates of the pre-optimization seed (commit 42e160f) \
         measured on the machine that committed this file; the reference rows below use \
         the same algorithms but sit on the improved field arithmetic\",\n",
    );
    out.push_str("    \"p256_mul_base_us\": 89.8,\n");
    out.push_str("    \"p256_mul_us\": 88.7,\n");
    out.push_str("    \"ecdsa_sign_us\": 124.7,\n");
    out.push_str("    \"ecdsa_verify_us\": 249.6\n");
    out.push_str("  },\n");
    out.push_str("  \"results\": {\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = row.before_us / row.after_us;
        out.push_str(&format!(
            "    \"{}\": {{ \"reference_us\": {:.1}, \"fast_us\": {:.1}, \
             \"speedup_vs_reference\": {:.2}, \
             \"reference_ops_per_sec\": {:.0}, \"fast_ops_per_sec\": {:.0} }}{}\n",
            row.name,
            row.before_us,
            row.after_us,
            speedup,
            1e6 / row.before_us,
            1e6 / row.after_us,
            if i + 1 < rows.len() { "," } else { "" },
        ));
        println!(
            "{:>22}: {:>8.1} us -> {:>7.1} us  ({:.2}x)",
            row.name, row.before_us, row.after_us, speedup
        );
    }
    out.push_str("  }\n}\n");

    std::fs::write("BENCH_crypto.json", &out).expect("write BENCH_crypto.json");
    eprintln!("wrote BENCH_crypto.json");
}
