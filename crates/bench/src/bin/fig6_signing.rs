//! **Figure 6**: ECDSA signature generation throughput for Fabric block
//! headers as a function of worker threads.
//!
//! The paper measures up to 16 worker threads on a 16-hardware-thread
//! Xeon E5520 pair, peaking at ~8.4 k signatures/s, and notes the rate
//! is independent of envelope and block sizes because only the
//! fixed-size *header* is signed. This harness reproduces both
//! observations with our from-scratch P-256 implementation.
//!
//! ```sh
//! cargo run --release -p bench --bin fig6_signing
//! ```

use hlf_wire::Bytes;
use ordering_core::signing::SigningPool;
use hlf_crypto::ecdsa::SigningKey;
use hlf_fabric::block::Block;
use hlf_crypto::sha256::Hash256;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measures aggregate header-signing throughput with `threads` workers.
fn signing_rate(threads: usize, envelope_size: usize, block_size: usize) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let signed = Arc::new(AtomicU64::new(0));
    let envelopes: Vec<Bytes> = (0..block_size)
        .map(|i| Bytes::from(vec![i as u8; envelope_size]))
        .collect();

    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let signed = Arc::clone(&signed);
            let envelopes = envelopes.clone();
            std::thread::spawn(move || {
                let key = SigningKey::from_seed(format!("fig6-{w}").as_bytes());
                let mut number = w as u64 + 1;
                let mut prev = Hash256::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    // Build + sign a full block exactly as an ordering
                    // node would: header over the envelope data hash.
                    let mut block = Block::build(number, prev, envelopes.clone());
                    block.sign(w as u32, &key);
                    prev = block.header_hash();
                    number += 1;
                    signed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(300)); // warm-up
    let start_count = signed.load(Ordering::Relaxed);
    let start = Instant::now();
    std::thread::sleep(Duration::from_secs(2));
    let elapsed = start.elapsed();
    let count = signed.load(Ordering::Relaxed) - start_count;
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        let _ = worker.join();
    }
    count as f64 / elapsed.as_secs_f64()
}

/// Drives the actual [`SigningPool`] the ordering node uses and reports
/// the queue-depth counters, showing the backpressure the bounded job
/// queue exerts on the node thread when signing cannot keep up.
fn pool_backpressure(threads: usize, blocks: u64) {
    let key = SigningKey::from_seed(b"fig6-pool");
    let pool = SigningPool::new(threads, 0, key, |_| {});
    let stats = pool.stats();
    let mut peak_pending = 0u64;
    let mut peak_backlog = 0usize;
    let start = Instant::now();
    for number in 1..=blocks {
        pool.submit(Block::build(
            number,
            Hash256::ZERO,
            vec![Bytes::from_static(b"envelope")],
        ));
        peak_pending = peak_pending.max(stats.pending());
        peak_backlog = peak_backlog.max(pool.backlog());
    }
    let submit_done = start.elapsed();
    while stats.pending() > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let drained = start.elapsed();
    println!(
        "{threads:>8} {:>10} {:>8} {:>13} {:>13} {:>11.2} {:>11.2}",
        stats.submitted(),
        stats.signed(),
        peak_pending,
        peak_backlog,
        submit_done.as_secs_f64() * 1e3,
        drained.as_secs_f64() * 1e3,
    );
}

fn main() {
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("# Figure 6: block-header signature generation throughput");
    println!("# blocks of 10 empty envelopes, sweeping worker threads");
    println!(
        "# host parallelism: {host_parallelism} hardware thread(s); the curve \
         saturates there"
    );
    println!("{:>8} {:>16}", "threads", "ksignatures/sec");
    let mut series = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        let rate = signing_rate(threads, 0, 10);
        println!("{threads:>8} {:>16.2}", rate / 1000.0);
        series.push((threads, rate));
    }

    let peak = series.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    println!("\npeak: {:.0} signatures/sec", peak);
    println!(
        "theoretical ordering bound at 10 envelopes/block: {:.0} tx/s\n",
        peak * 10.0
    );

    // The paper's second observation: the rate does not depend on
    // envelope or block size, because only the header is signed.
    let max_threads = host_parallelism.min(16);
    println!("# size-independence check (at {max_threads} threads):");
    println!("{:>14} {:>12} {:>16}", "envelope", "block size", "ksignatures/sec");
    for (envelope_size, block_size) in [(0, 10), (1024, 10), (0, 100), (4096, 100)] {
        let rate = signing_rate(max_threads, envelope_size, block_size);
        println!(
            "{envelope_size:>12} B {block_size:>12} {:>16.2}",
            rate / 1000.0
        );
    }
    println!(
        "\n(Variation here reflects the *hashing* of the block data, which\n\
         grows with block bytes; the signature itself covers only the\n\
         32-byte header digest, as in the paper.)"
    );
    // Queue-depth visibility through the node's actual signing pool:
    // `submitted` vs `signed` counters expose how deep the bounded job
    // queue runs before backpressure stalls the submitting thread.
    println!("\n# signing-pool queue depth (SigningStats submitted/signed/pending):");
    println!(
        "{:>8} {:>10} {:>8} {:>13} {:>13} {:>11} {:>11}",
        "threads", "submitted", "signed", "peak pending", "peak backlog", "submit ms", "drain ms"
    );
    for threads in [1usize, 4, max_threads] {
        pool_backpressure(threads, 512);
    }

    println!(
        "\npaper reference: ~8.4 ksignatures/sec at 16 threads on 2009-era\n\
         Xeon E5520; absolute rates differ with hardware, the scaling\n\
         shape is the result under reproduction."
    );
}
