//! **Benchmark aggregator and regression gate.**
//!
//! Default mode collects the headline number of every committed
//! `BENCH_*.json` in the repo root into one `BENCH_summary.json`, so a
//! reader (or a later PR) sees the whole performance picture in one
//! file instead of six.
//!
//! `--check` mode is the CI gate: it re-runs three throughput probes
//! and fails loudly if any regressed more than 10 % against the
//! committed `bench_baselines.json`. Two are virtual-time simulations
//! (the saturated k = 4 pipeline workload and the paper-rate WHEAT geo
//! run), hence bit-identical across machines — a miss there is a real
//! code regression, never machine noise. The third drives a
//! four-replica TCP-loopback cluster over real sockets; its workload
//! is fixed but its clock is wall time, so its committed baseline sits
//! far below a healthy run and only transport-level collapses (lost
//! write coalescing, per-frame copies, handshake storms) trip it.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_summary               # writes BENCH_summary.json
//! cargo run --release -p bench --bin bench_summary -- --check    # regression gate (exit 1 on regression)
//! cargo run --release -p bench --bin bench_summary -- --root /path/to/repo --check
//! ```

use hlf_obs::Registry;
use hlf_simnet::SimTime;
use hlf_transport::{PeerId, TcpConfig, TcpNetwork};
use hlf_wire::Bytes;
use ordering_core::proc::{connect_frontend_endpoint, start_replica_endpoint};
use ordering_core::service::ServiceOptions;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Allowed throughput regression vs the committed baseline (%).
const TOLERANCE_PCT: f64 = 10.0;

/// Ceiling for the recorded 1 Hz telemetry-scrape overhead (%),
/// measured by `bench_net` into BENCH_obs.json.
const SCRAPE_OVERHEAD_MAX_PCT: f64 = 3.0;

fn main() {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if check {
        run_gate(&root);
    } else {
        write_summary(&root);
    }
}

/// Extracts the number following `"key":` after the first occurrence of
/// `anchor` in `src`. Tolerant scraping for the hand-rolled BENCH files
/// (no serde in-tree).
fn scrape(src: &str, anchor: &str, key: &str) -> Option<f64> {
    let after = &src[src.find(anchor)? + anchor.len()..];
    let needle = format!("\"{key}\":");
    let at = after.find(&needle)? + needle.len();
    let rest = after.get(at..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest.get(..end)?.trim().parse().ok()
}

/// One aggregated headline metric.
struct Headline {
    file: &'static str,
    metric: &'static str,
    value: Option<f64>,
}

fn write_summary(root: &Path) {
    let read = |name: &str| std::fs::read_to_string(root.join(name)).unwrap_or_default();
    let crypto = read("BENCH_crypto.json");
    let wire = read("BENCH_wire.json");
    let pipeline = read("BENCH_pipeline.json");
    let trace = read("BENCH_trace.json");
    let audit = read("BENCH_audit.json");
    let net = read("BENCH_net.json");
    let obs = read("BENCH_obs.json");
    let lint = read("BENCH_lint.json");

    let headlines = [
        Headline {
            file: "BENCH_crypto.json",
            metric: "ecdsa_sign_fast_us",
            value: scrape(&crypto, "\"ecdsa_sign\"", "fast_us"),
        },
        Headline {
            file: "BENCH_crypto.json",
            metric: "ecdsa_verify_fast_us",
            value: scrape(&crypto, "\"ecdsa_verify\"", "fast_us"),
        },
        Headline {
            file: "BENCH_wire.json",
            metric: "allocs_per_ordered_envelope",
            value: scrape(&wire, "allocs_per_ordered_envelope", "after"),
        },
        Headline {
            file: "BENCH_pipeline.json",
            metric: "pipelined_ordered_tx_s",
            value: scrape(&pipeline, "\"pipelined\"", "ordered_tx_s"),
        },
        Headline {
            file: "BENCH_pipeline.json",
            metric: "pipeline_speedup",
            value: scrape(&pipeline, "\"pipelined\"", "speedup")
                .or_else(|| scrape(&pipeline, "", "speedup")),
        },
        Headline {
            file: "BENCH_trace.json",
            metric: "relay_mean_us",
            value: scrape(&trace, "\"relay\"", "mean_us"),
        },
        Headline {
            file: "BENCH_audit.json",
            metric: "audit_wall_overhead_pct",
            value: scrape(&audit, "\"overhead\"", "wall_overhead_pct"),
        },
        Headline {
            file: "BENCH_audit.json",
            metric: "audit_events",
            value: scrape(&audit, "\"overhead\"", "events_audited"),
        },
        Headline {
            file: "BENCH_net.json",
            metric: "tcp_4proc_ordered_tx_s",
            value: scrape(&net, "\"tcp_4proc\"", "ordered_tx_s"),
        },
        Headline {
            file: "BENCH_net.json",
            metric: "tcp_ratio_vs_in_process",
            value: scrape(&net, "\"tcp_4proc\"", "ratio_vs_in_process"),
        },
        Headline {
            file: "BENCH_net.json",
            metric: "frames_per_writev",
            value: scrape(&net, "\"coalescing\"", "frames_per_writev"),
        },
        Headline {
            file: "BENCH_obs.json",
            metric: "scrape_overhead_pct",
            value: scrape(&obs, "bench.scrape.overhead_basis_points", "value")
                .map(|bp| bp / 100.0),
        },
        // hlf-lint sweep health: the workspace must stay finding-free,
        // and the suppression count surfaces creeping allow-sprawl.
        Headline {
            file: "BENCH_lint.json",
            metric: "lint_files_scanned",
            value: scrape(&lint, "", "files_scanned"),
        },
        Headline {
            file: "BENCH_lint.json",
            metric: "lint_findings",
            value: scrape(&lint, "", "findings_total"),
        },
        Headline {
            file: "BENCH_lint.json",
            metric: "lint_suppressions_used",
            value: scrape(&lint, "", "suppressions_used"),
        },
    ];

    let mut out = String::from("{\n  \"headlines\": [\n");
    let present: Vec<&Headline> = headlines.iter().filter(|h| h.value.is_some()).collect();
    for (i, h) in present.iter().enumerate() {
        let value = h.value.unwrap_or(f64::NAN);
        println!("{:<22} {:<28} {value}", h.file, h.metric);
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"metric\": \"{}\", \"value\": {value}}}{}\n",
            h.file,
            h.metric,
            if i + 1 < present.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = root.join("BENCH_summary.json");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}

/// The deterministic virtual-time throughput probes the gate
/// re-measures.
fn probe_pipeline_tx_s() -> f64 {
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_slow_replica(3, SimTime::from_millis(250))
        .with_pipeline_depth(4);
    config.duration = SimTime::from_secs(6);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 2500.0;
    run_geo_experiment(&config).throughput
}

fn probe_wheat_tx_s() -> f64 {
    let mut config = GeoConfig::new(Protocol::Wheat);
    config.duration = SimTime::from_secs(12);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;
    run_geo_experiment(&config).throughput
}

/// Real-socket probe: a four-replica ordering cluster where every
/// frame crosses a TCP loopback socket (four `TcpNetwork`s plus a
/// frontend network, all in this process), driven with a fixed
/// windowed workload. The workload is deterministic; the clock is wall
/// time, so the committed baseline absorbs scheduler noise with a wide
/// margin and the gate only trips on transport-level regressions.
fn probe_net_tx_s() -> f64 {
    const N: usize = 4;
    const FRONTEND_ID: u32 = 700;
    const WARMUP: u64 = 500;
    const COUNT: u64 = 3_000;
    const WINDOW: u64 = 1_000;
    const SECRET: &[u8] = b"bench-gate";

    let bind = |id: PeerId| {
        TcpNetwork::bind(TcpConfig::new(
            id,
            "127.0.0.1:0".parse().expect("loopback addr"),
            SECRET,
        ))
        .expect("bind loopback network")
    };
    let nets: Vec<TcpNetwork> = (0..N as u32).map(|i| bind(PeerId::replica(i))).collect();
    let front_net = bind(PeerId::client(FRONTEND_ID));
    for a in &nets {
        for b in &nets {
            if a.id() != b.id() {
                a.add_peer(b.id(), b.local_addr());
            }
        }
        a.add_peer(front_net.id(), front_net.local_addr());
        front_net.add_peer(a.id(), a.local_addr());
    }

    // Same fixed-cutter configuration as `bench_net` / `hlf-node`, so
    // the gate measures the shipped cluster shape.
    let options = ServiceOptions::new(1)
        .with_block_size(10)
        .with_signing_threads(1)
        .with_request_timeout_ms(60_000)
        .with_pipeline_depth(4)
        .with_flush_on_batch_end(true);
    let handles: Vec<_> = (0..N)
        .map(|i| {
            start_replica_endpoint(
                i,
                N,
                &options,
                nets[i].endpoint(),
                Registry::new(format!("gate-net-{i}")),
            )
        })
        .collect();
    let mut frontend = connect_frontend_endpoint(FRONTEND_ID, N, &options, front_net.endpoint());

    let payload = |i: u64| {
        let mut body = vec![0u8; 200];
        body[..8].copy_from_slice(&i.to_le_bytes());
        Bytes::from(body)
    };
    let mut drive = |base: u64, count: u64| {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut submitted = 0u64;
        let mut delivered = 0u64;
        while delivered < count {
            assert!(
                Instant::now() < deadline,
                "loopback gate cluster stalled: {delivered} of {count} delivered"
            );
            while submitted < count && submitted - delivered < WINDOW {
                frontend.submit(payload(base + submitted));
                submitted += 1;
            }
            if let Some(block) = frontend.next_block(Duration::from_millis(50)) {
                delivered += block.envelopes.len() as u64;
            }
        }
    };

    drive(0, WARMUP);
    let start = Instant::now();
    drive(WARMUP, COUNT);
    let tx_s = COUNT as f64 / start.elapsed().as_secs_f64();
    drop(drive);

    drop(frontend);
    for handle in handles {
        handle.shutdown();
    }
    for net in nets {
        net.shutdown();
    }
    front_net.shutdown();
    tx_s
}

fn run_gate(root: &Path) {
    let path = root.join("bench_baselines.json");
    let baselines = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("no committed baselines at {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let gates = [
        ("pipeline_k4_tx_s", probe_pipeline_tx_s as fn() -> f64),
        ("geo_wheat_tx_s", probe_wheat_tx_s as fn() -> f64),
        ("net_loopback_tx_s", probe_net_tx_s as fn() -> f64),
    ];
    let mut failed = false;
    for (key, probe) in gates {
        let Some(baseline) = scrape(&baselines, "", key) else {
            eprintln!("baseline key {key} missing from {}", path.display());
            failed = true;
            continue;
        };
        let live = probe();
        let floor = baseline * (1.0 - TOLERANCE_PCT / 100.0);
        let delta_pct = (live / baseline - 1.0) * 100.0;
        if live < floor {
            eprintln!(
                "REGRESSION {key}: {live:.1} tx/s vs baseline {baseline:.1} \
                 ({delta_pct:+.1}%, tolerance -{TOLERANCE_PCT}%)"
            );
            failed = true;
        } else {
            println!("gate ok {key}: {live:.1} tx/s vs baseline {baseline:.1} ({delta_pct:+.1}%)");
        }
    }
    // Recorded-value gate: the committed 1 Hz scrape overhead from
    // bench_net's telemetry-plane phase must stay under the ceiling.
    // (Upper-bound semantics, unlike the throughput floors above.)
    match std::fs::read_to_string(root.join("BENCH_obs.json")) {
        Ok(obs) => match scrape(&obs, "bench.scrape.overhead_basis_points", "value") {
            Some(basis_points) => {
                let pct = basis_points / 100.0;
                if pct > SCRAPE_OVERHEAD_MAX_PCT {
                    eprintln!(
                        "REGRESSION scrape_overhead_pct: {pct:.2}% recorded overhead \
                         exceeds the {SCRAPE_OVERHEAD_MAX_PCT}% ceiling"
                    );
                    failed = true;
                } else {
                    println!(
                        "gate ok scrape_overhead_pct: {pct:.2}% \
                         (ceiling {SCRAPE_OVERHEAD_MAX_PCT}%)"
                    );
                }
            }
            None => {
                eprintln!(
                    "BENCH_obs.json has no scrape_overhead row (run `make bench-net` to record it)"
                );
                failed = true;
            }
        },
        Err(_) => println!("gate skip scrape_overhead_pct: no BENCH_obs.json"),
    }
    if failed {
        std::process::exit(1);
    }
}
