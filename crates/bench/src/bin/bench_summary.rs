//! **Benchmark aggregator and regression gate.**
//!
//! Default mode collects the headline number of every committed
//! `BENCH_*.json` in the repo root into one `BENCH_summary.json`, so a
//! reader (or a later PR) sees the whole performance picture in one
//! file instead of six.
//!
//! `--check` mode is the CI gate: it re-runs the two deterministic
//! throughput probes (the saturated k = 4 pipeline workload and the
//! paper-rate WHEAT geo run — both virtual-time, hence bit-identical
//! across machines) and fails loudly if either regressed more than 10 %
//! against the committed `bench_baselines.json`. Because the sim is
//! deterministic, a failure is a real code regression, never machine
//! noise.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_summary               # writes BENCH_summary.json
//! cargo run --release -p bench --bin bench_summary -- --check    # regression gate (exit 1 on regression)
//! cargo run --release -p bench --bin bench_summary -- --root /path/to/repo --check
//! ```

use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};
use std::path::{Path, PathBuf};

/// Allowed throughput regression vs the committed baseline (%).
const TOLERANCE_PCT: f64 = 10.0;

fn main() {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if check {
        run_gate(&root);
    } else {
        write_summary(&root);
    }
}

/// Extracts the number following `"key":` after the first occurrence of
/// `anchor` in `src`. Tolerant scraping for the hand-rolled BENCH files
/// (no serde in-tree).
fn scrape(src: &str, anchor: &str, key: &str) -> Option<f64> {
    let after = &src[src.find(anchor)? + anchor.len()..];
    let needle = format!("\"{key}\":");
    let at = after.find(&needle)? + needle.len();
    let rest = after.get(at..)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest.get(..end)?.trim().parse().ok()
}

/// One aggregated headline metric.
struct Headline {
    file: &'static str,
    metric: &'static str,
    value: Option<f64>,
}

fn write_summary(root: &Path) {
    let read = |name: &str| std::fs::read_to_string(root.join(name)).unwrap_or_default();
    let crypto = read("BENCH_crypto.json");
    let wire = read("BENCH_wire.json");
    let pipeline = read("BENCH_pipeline.json");
    let trace = read("BENCH_trace.json");
    let audit = read("BENCH_audit.json");

    let headlines = [
        Headline {
            file: "BENCH_crypto.json",
            metric: "ecdsa_sign_fast_us",
            value: scrape(&crypto, "\"ecdsa_sign\"", "fast_us"),
        },
        Headline {
            file: "BENCH_crypto.json",
            metric: "ecdsa_verify_fast_us",
            value: scrape(&crypto, "\"ecdsa_verify\"", "fast_us"),
        },
        Headline {
            file: "BENCH_wire.json",
            metric: "allocs_per_ordered_envelope",
            value: scrape(&wire, "allocs_per_ordered_envelope", "after"),
        },
        Headline {
            file: "BENCH_pipeline.json",
            metric: "pipelined_ordered_tx_s",
            value: scrape(&pipeline, "\"pipelined\"", "ordered_tx_s"),
        },
        Headline {
            file: "BENCH_pipeline.json",
            metric: "pipeline_speedup",
            value: scrape(&pipeline, "\"pipelined\"", "speedup")
                .or_else(|| scrape(&pipeline, "", "speedup")),
        },
        Headline {
            file: "BENCH_trace.json",
            metric: "relay_mean_us",
            value: scrape(&trace, "\"relay\"", "mean_us"),
        },
        Headline {
            file: "BENCH_audit.json",
            metric: "audit_wall_overhead_pct",
            value: scrape(&audit, "\"overhead\"", "wall_overhead_pct"),
        },
        Headline {
            file: "BENCH_audit.json",
            metric: "audit_events",
            value: scrape(&audit, "\"overhead\"", "events_audited"),
        },
    ];

    let mut out = String::from("{\n  \"headlines\": [\n");
    let present: Vec<&Headline> = headlines.iter().filter(|h| h.value.is_some()).collect();
    for (i, h) in present.iter().enumerate() {
        let value = h.value.unwrap_or(f64::NAN);
        println!("{:<22} {:<28} {value}", h.file, h.metric);
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"metric\": \"{}\", \"value\": {value}}}{}\n",
            h.file,
            h.metric,
            if i + 1 < present.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = root.join("BENCH_summary.json");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}

/// The two deterministic throughput probes the gate re-measures.
fn probe_pipeline_tx_s() -> f64 {
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_slow_replica(3, SimTime::from_millis(250))
        .with_pipeline_depth(4);
    config.duration = SimTime::from_secs(6);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 2500.0;
    run_geo_experiment(&config).throughput
}

fn probe_wheat_tx_s() -> f64 {
    let mut config = GeoConfig::new(Protocol::Wheat);
    config.duration = SimTime::from_secs(12);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;
    run_geo_experiment(&config).throughput
}

fn run_gate(root: &Path) {
    let path = root.join("bench_baselines.json");
    let baselines = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("no committed baselines at {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    let gates = [
        ("pipeline_k4_tx_s", probe_pipeline_tx_s as fn() -> f64),
        ("geo_wheat_tx_s", probe_wheat_tx_s as fn() -> f64),
    ];
    let mut failed = false;
    for (key, probe) in gates {
        let Some(baseline) = scrape(&baselines, "", key) else {
            eprintln!("baseline key {key} missing from {}", path.display());
            failed = true;
            continue;
        };
        let live = probe();
        let floor = baseline * (1.0 - TOLERANCE_PCT / 100.0);
        let delta_pct = (live / baseline - 1.0) * 100.0;
        if live < floor {
            eprintln!(
                "REGRESSION {key}: {live:.1} tx/s vs baseline {baseline:.1} \
                 ({delta_pct:+.1}%, tolerance -{TOLERANCE_PCT}%)"
            );
            failed = true;
        } else {
            println!("gate ok {key}: {live:.1} tx/s vs baseline {baseline:.1} ({delta_pct:+.1}%)");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
