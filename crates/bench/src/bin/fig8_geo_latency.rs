//! **Figure 8 (a-d)**: geo-distributed latency with blocks of 10
//! envelopes — BFT-SMaRt vs WHEAT at four frontends (Canada, Oregon,
//! Virginia, São Paulo), for envelope sizes 40 B / 200 B / 1 KiB /
//! 4 KiB, median and 90th percentile.
//!
//! Runs on the deterministic WAN simulator with the AWS inter-region
//! RTT matrix (see `hlf-simnet::regions`).
//!
//! ```sh
//! cargo run --release -p bench --bin fig8_geo_latency
//! cargo run --release -p bench --bin fig8_geo_latency -- --obs  # + phase table
//! ```

use bench::print_phase_breakdown;
use hlf_obs::Snapshot;
use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};

/// Shared by fig8 (block size 10) and fig9 (block size 100). With
/// `collect_obs`, the 1 KiB runs also capture per-replica obs
/// registries and a per-phase latency breakdown is printed at the end.
pub fn run_geo_figure(block_size: usize, figure: &str, collect_obs: bool) {
    println!("# Figure {figure}: EC2-style latency, 4 receivers, blocks of {block_size} envelopes");
    println!("# per frontend: median / p90 milliseconds\n");

    let envelope_sizes = [40usize, 200, 1024, 4096];
    let protocols = [(Protocol::BftSmart, "BFT-SMaRt"), (Protocol::Wheat, "WHEAT")];

    // regions gathered from the first run
    let mut region_names: Vec<String> = Vec::new();
    // results[env][proto] = Vec<(median, p90)>
    let mut results: Vec<Vec<Vec<(f64, f64)>>> = Vec::new();
    // (protocol name, per-replica snapshots) from the 1 KiB runs
    let mut obs_tables: Vec<(&str, Vec<Snapshot>)> = Vec::new();

    for &envelope_size in &envelope_sizes {
        let mut per_proto = Vec::new();
        for &(protocol, protocol_name) in &protocols {
            let mut config = GeoConfig::new(protocol);
            config.envelope_size = envelope_size;
            config.block_size = block_size;
            config.duration = SimTime::from_secs(45);
            config.warmup = SimTime::from_secs(5);
            config.rate_per_frontend = 275.0; // >1000 tx/s aggregate
            config.collect_obs = collect_obs && envelope_size == 1024;
            let result = run_geo_experiment(&config);
            if let Some(obs) = result.obs {
                obs_tables.push((protocol_name, obs));
            }
            if region_names.is_empty() {
                region_names = result
                    .frontends
                    .iter()
                    .map(|f| f.region.name().to_string())
                    .collect();
            }
            per_proto.push(
                result
                    .frontends
                    .iter()
                    .map(|f| (f.median_ms, f.p90_ms))
                    .collect::<Vec<_>>(),
            );
        }
        results.push(per_proto);
    }

    for (slot, region) in region_names.iter().enumerate() {
        println!("## panel: frontend in {region}");
        println!(
            "{:>10} {:>22} {:>22}",
            "envelope", "BFT-SMaRt med/p90", "WHEAT med/p90"
        );
        for (env_index, &envelope_size) in envelope_sizes.iter().enumerate() {
            let (bft_median, bft_p90) = results[env_index][0][slot];
            let (wheat_median, wheat_p90) = results[env_index][1][slot];
            println!(
                "{envelope_size:>8} B {bft_median:>12.0} / {bft_p90:<7.0} {wheat_median:>12.0} / {wheat_p90:<7.0}"
            );
        }
        println!();
    }

    // The paper's headline observations, restated over our numbers.
    let avg = |proto: usize| -> f64 {
        let mut sum = 0.0;
        let mut count = 0.0;
        for env in &results {
            for &(median, _) in &env[proto] {
                sum += median;
                count += 1.0;
            }
        }
        sum / count
    };
    let bft_avg = avg(0);
    let wheat_avg = avg(1);
    println!(
        "WHEAT vs BFT-SMaRt average median: {wheat_avg:.0} ms vs {bft_avg:.0} ms \
         ({:.0}% lower; paper: \"almost 50%\")",
        100.0 * (1.0 - wheat_avg / bft_avg)
    );
    // Envelope size insensitivity: spread across sizes per frontend.
    let mut max_spread: f64 = 0.0;
    for proto in 0..2 {
        for slot in 0..region_names.len() {
            let medians: Vec<f64> = results.iter().map(|env| env[proto][slot].0).collect();
            let spread =
                medians.iter().cloned().fold(f64::MIN, f64::max)
                    - medians.iter().cloned().fold(f64::MAX, f64::min);
            max_spread = max_spread.max(spread);
        }
    }
    println!(
        "largest 40 B -> 4 KiB median spread at any frontend: {max_spread:.0} ms \
         (paper: never above 29 ms)"
    );

    for (protocol_name, snapshots) in &obs_tables {
        println!("\n# {protocol_name}, 1 KiB envelopes, blocks of {block_size}");
        print_phase_breakdown(snapshots);
    }
}

#[allow(dead_code)]
fn main() {
    let obs = std::env::args().any(|a| a == "--obs");
    run_geo_figure(10, "8", obs);
}
