//! **Figure 7 (a-f)**: LAN ordering-service throughput for different
//! envelope, block and cluster sizes, as a function of the number of
//! receivers.
//!
//! The paper sweeps clusters of 4/7/10 nodes, blocks of 10/100
//! envelopes, envelope sizes 40 B / 200 B / 1 KiB / 4 KiB and 1-32
//! receivers, measuring block-generation throughput at node 0. The
//! qualitative results to reproduce:
//!
//! * small envelopes + blocks of 100 beat blocks of 10 (signature rate
//!   stops being the bottleneck),
//! * throughput falls as receivers grow (block transmission dominates),
//! * large envelopes are replication-bound and care less about
//!   receivers,
//! * larger clusters are slower.
//!
//! ```sh
//! cargo run --release -p bench --bin fig7_lan_throughput            # quick grid
//! cargo run --release -p bench --bin fig7_lan_throughput -- --full  # paper grid
//! cargo run --release -p bench --bin fig7_lan_throughput -- --obs   # + phase table
//! ```

use bench::{
    ktps, print_phase_breakdown, run_lan_throughput, LanConfig, PAPER_CLUSTERS,
    PAPER_ENVELOPE_SIZES, PAPER_RECEIVERS,
};
use std::time::Duration;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let collect_obs = std::env::args().any(|a| a == "--obs");
    let (clusters, block_sizes, envelope_sizes, receivers, measure) = if full {
        (
            PAPER_CLUSTERS.to_vec(),
            vec![10usize, 100],
            PAPER_ENVELOPE_SIZES.to_vec(),
            PAPER_RECEIVERS.to_vec(),
            Duration::from_secs(3),
        )
    } else {
        (
            vec![(4usize, 1usize)],
            vec![10usize, 100],
            vec![40usize, 1024],
            vec![1usize, 8, 32],
            Duration::from_secs(2),
        )
    };

    println!("# Figure 7: LAN ordering throughput (measured at node 0)");
    println!(
        "# host parallelism: {} hardware thread(s)",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    println!(
        "{:>2} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "n", "blk size", "env size", "receivers", "ktrans/sec", "blocks/sec"
    );

    for &(n, f) in &clusters {
        for &block_size in &block_sizes {
            let panel = match (n, block_size) {
                (4, 10) => "7a",
                (4, 100) => "7b",
                (7, 10) => "7c",
                (7, 100) => "7d",
                (10, 10) => "7e",
                (10, 100) => "7f",
                _ => "--",
            };
            println!("# --- panel {panel}: {n} orderers, {block_size} envelopes/block ---");
            for &envelope_size in &envelope_sizes {
                for &receiver_count in &receivers {
                    let mut config = LanConfig::new(n, f);
                    config.block_size = block_size;
                    config.envelope_size = envelope_size;
                    config.receivers = receiver_count;
                    config.measure = measure;
                    let result = run_lan_throughput(&config);
                    println!(
                        "{n:>2} {block_size:>9} {envelope_size:>9} {receiver_count:>9} {:>12} {:>12.0}",
                        ktps(result.tx_per_sec),
                        result.blocks_per_sec
                    );
                }
            }
        }
    }

    println!(
        "\npaper reference (Dell R410 cluster, GbE): ~50 ktx/s peak at\n\
         blocks of 10 / few receivers; >100 ktx/s for 40 B envelopes at\n\
         blocks of 100; ~2.2 ktx/s at 10 nodes / 4 KiB / 32 receivers.\n\
         Absolute numbers scale with hardware; the orderings above are\n\
         the reproduced result."
    );

    if collect_obs {
        // One dedicated instrumented point: n=4, 1 KiB envelopes,
        // blocks of 10, single receiver.
        let mut config = LanConfig::new(4, 1);
        config.envelope_size = 1024;
        config.measure = Duration::from_secs(2);
        config.collect_obs = true;
        let result = run_lan_throughput(&config);
        println!(
            "\n# obs run: 4 orderers, blocks of {}, 1 KiB envelopes, 1 receiver \
             ({} at {:.0} blocks/sec)",
            config.block_size,
            ktps(result.tx_per_sec),
            result.blocks_per_sec
        );
        if let Some(snapshots) = &result.obs {
            print_phase_breakdown(snapshots);
        }
    }
}
