//! **`hlf-top`: live telemetry for a deployed multi-process cluster.**
//!
//! Attaches to the admin endpoints of running `hlf_node` replicas
//! (`--admin-port` / `--admin-listen`), scrapes each at `--interval-ms`
//! (default 1 Hz), and renders the same per-replica dashboard the
//! in-process simulator shows under `HLF_DASH=1` — regency, pipeline
//! window, decide frontier, tx/s and p50/p99 sparklines — now across
//! OS processes. Every scrape also drains each node's flight-recorder
//! ring and feeds the events through `hlf-audit`'s `ClusterAuditor`,
//! so cross-process safety invariants (agreement, certified-value
//! preservation, monotonic decide release) are checked live; at exit a
//! causally-ordered cluster timeline plus any violations are printed
//! and violations fail the process.
//!
//! ```sh
//! hlf_top --secret bench-net \
//!   --node replica:0=127.0.0.1:7200 --node replica:1=127.0.0.1:7201 \
//!   --node replica:2=127.0.0.1:7202 --node replica:3=127.0.0.1:7203 \
//!   --prom-out /tmp/hlf.prom --duration-s 30
//! ```
//!
//! Metric scrapes use the delta protocol (`MetricsDelta`), so
//! steady-state refreshes ship only movement; the accumulated
//! per-node snapshots are merged back to full registries for the
//! `--prom-out` Prometheus text exposition (rewritten atomically every
//! refresh — point node_exporter's textfile collector, or anything
//! else, at it). `--once` scrapes everything a single time, prints the
//! dashboard frame plus health lines (and the exposition to
//! `--prom-out` if given), then exits — useful for scripting.
//! `--smoke` self-spawns one replica (via `$HLF_NODE_BIN`) and
//! verifies the full scrape path end to end; CI's admin smoke.

use hlf_audit::{timeline, ClusterAuditor, Dashboard};
use hlf_obs::{to_prometheus, FlightEvent, Snapshot};
use hlf_transport::{AdminClient, PeerId};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("hlf_top: {msg}");
    std::process::exit(2);
}

struct TopArgs {
    nodes: Vec<(u32, SocketAddr)>,
    secret: String,
    id: u32,
    n: Option<usize>,
    f: Option<usize>,
    interval_ms: u64,
    duration_s: Option<u64>,
    prom_out: Option<String>,
    once: bool,
    smoke: bool,
    until_stdin_eof: bool,
}

fn parse_args() -> TopArgs {
    let mut args = TopArgs {
        nodes: Vec::new(),
        secret: "hlf-cluster".to_string(),
        id: 9900,
        n: None,
        f: None,
        interval_ms: 1000,
        duration_s: None,
        prom_out: None,
        once: false,
        smoke: false,
        until_stdin_eof: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |key: &str| -> String {
            argv.next()
                .unwrap_or_else(|| die(&format!("--{key} wants a value")))
        };
        match arg.as_str() {
            "--node" => {
                let spec = value("node");
                let Some((peer, addr)) = spec.split_once('=') else {
                    die(&format!("--node wants replica:N=ADMIN_ADDR, got {spec}"));
                };
                let Some(PeerId::Replica(id)) = PeerId::parse(peer.trim()) else {
                    die(&format!("--node peer must be replica:N, got {peer}"));
                };
                let addr = addr
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("invalid admin address {addr}")));
                args.nodes.push((id, addr));
            }
            "--secret" => args.secret = value("secret"),
            "--id" => args.id = parse_num(&value("id")) as u32,
            "--n" => args.n = Some(parse_num(&value("n")) as usize),
            "--f" => args.f = Some(parse_num(&value("f")) as usize),
            "--interval-ms" => args.interval_ms = parse_num(&value("interval-ms")).max(10),
            "--duration-s" => args.duration_s = Some(parse_num(&value("duration-s"))),
            "--prom-out" => args.prom_out = Some(value("prom-out")),
            "--once" => args.once = true,
            "--smoke" => args.smoke = true,
            // For embedding under a parent process (bench_net): stop
            // cleanly — with the exit report — when stdin hits EOF.
            "--until-stdin-eof" => args.until_stdin_eof = true,
            other => die(&format!("unknown argument {other}")),
        }
    }
    args
}

fn parse_num(v: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| die(&format!("invalid number: {v}")))
}

/// Atomic exposition rewrite: readers tailing the file never see a
/// torn rendering.
fn write_prom_atomic(path: &str, text: &str) {
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(err) = result {
        eprintln!("hlf_top: cannot write {path}: {err}");
    }
}

/// One scraped node: connection (re-dialled lazily on failure), the
/// registry state accumulated from deltas, and the server epoch that
/// invalidates it.
struct NodeState {
    replica: u32,
    addr: SocketAddr,
    client: Option<AdminClient>,
    accumulated: Option<Snapshot>,
    epoch: Option<u64>,
    events: Vec<FlightEvent>,
}

impl NodeState {
    fn connect(&mut self, secret: &[u8], me: PeerId) -> bool {
        if self.client.is_none() {
            match AdminClient::connect(self.addr, secret, me, PeerId::Replica(self.replica)) {
                Ok(client) => self.client = Some(client),
                Err(err) => {
                    hlf_obs::debug!("hlf_top: replica {} unreachable: {err}", self.replica);
                    return false;
                }
            }
        }
        true
    }

    /// One scrape round: merge a metrics delta, drain flight events.
    /// Any error drops the connection; the next round re-dials (and a
    /// fresh connection restarts the cursor chain with full data).
    fn scrape(&mut self, secret: &[u8], me: PeerId) -> Vec<FlightEvent> {
        if !self.connect(secret, me) {
            return Vec::new();
        }
        let Some(client) = self.client.as_mut() else {
            return Vec::new();
        };
        let fresh = match client.metrics_delta() {
            Ok(reply) => {
                // A changed epoch is a restarted node: the accumulated
                // registry describes a dead process generation.
                if self.epoch.is_some_and(|seen| seen != reply.epoch) {
                    self.accumulated = None;
                }
                self.epoch = Some(reply.epoch);
                match self.accumulated.as_mut() {
                    Some(total) => total.merge(&reply.delta),
                    None => self.accumulated = Some(reply.delta),
                }
                match client.flight_events() {
                    Ok(dump) => dump.events,
                    Err(_) => {
                        self.client = None;
                        Vec::new()
                    }
                }
            }
            Err(_) => {
                self.client = None;
                Vec::new()
            }
        };
        self.events.extend(fresh.iter().copied());
        fresh
    }
}

/// Renders and writes/prints one Prometheus exposition over every
/// node's accumulated registry state.
fn export_prometheus(nodes: &[NodeState], prom_out: Option<&str>) {
    let snapshots: Vec<Snapshot> = nodes
        .iter()
        .filter_map(|n| n.accumulated.clone())
        .collect();
    if snapshots.is_empty() {
        return;
    }
    let text = to_prometheus(&snapshots);
    match prom_out {
        Some(path) => write_prom_atomic(path, &text),
        None => println!("{text}"),
    }
}

fn run_top(args: &TopArgs) {
    if args.nodes.is_empty() {
        die("no --node replica:N=ADDR targets given");
    }
    let n = args
        .n
        .unwrap_or_else(|| args.nodes.iter().map(|&(id, _)| id as usize + 1).max().unwrap_or(4));
    let f = args.f.unwrap_or((n.saturating_sub(1)) / 3);
    let me = PeerId::Client(args.id);
    let secret = args.secret.as_bytes().to_vec();

    let mut nodes: Vec<NodeState> = args
        .nodes
        .iter()
        .map(|&(replica, addr)| NodeState {
            replica,
            addr,
            client: None,
            accumulated: None,
            epoch: None,
            events: Vec::new(),
        })
        .collect();
    let mut auditor = ClusterAuditor::new(n, f);
    let mut dashboard = Dashboard::new(n);

    let deadline = args
        .duration_s
        .map(|secs| Instant::now() + Duration::from_secs(secs));
    let interval = Duration::from_millis(args.interval_ms);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    if args.until_stdin_eof {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    }

    loop {
        let tick_started = Instant::now();
        for i in 0..nodes.len() {
            let node = &mut nodes[i];
            let replica = node.replica as usize;
            for event in node.scrape(&secret, me) {
                auditor.observe(replica, &event);
                dashboard.observe(replica, &event);
            }
        }
        if args.prom_out.is_some() || args.once {
            export_prometheus(&nodes, args.prom_out.as_deref());
        }
        if args.once {
            // One structured frame instead of a live redraw.
            print!("{}", dashboard.render(&auditor));
            for node in &mut nodes {
                if !node.connect(&secret, me) {
                    continue;
                }
                if let Some(health) = node.client.as_mut().and_then(|c| c.health().ok()) {
                    println!("health replica:{} {}", node.replica, health.to_json());
                }
            }
            break;
        }
        dashboard.draw_to_stderr(&auditor);
        if deadline.is_some_and(|at| Instant::now() >= at)
            || stop.load(std::sync::atomic::Ordering::Acquire)
        {
            break;
        }
        std::thread::sleep(interval.saturating_sub(tick_started.elapsed()));
    }

    // Exit report: the causally-ordered cross-process timeline tail
    // plus every invariant violation the auditor saw.
    let rings: Vec<Vec<FlightEvent>> = nodes.iter().map(|n| n.events.clone()).collect();
    let merged = timeline::reconstruct(&rings);
    if !merged.is_empty() {
        eprintln!("\ncluster timeline: {} events merged across {} nodes; tail:", merged.len(), nodes.len());
        for e in merged.iter().rev().take(8).rev() {
            eprintln!(
                "  L{:<6} n{} t={:>10}us {:<16} a={} b={} c={}",
                e.lamport,
                e.node,
                e.event.at_us,
                e.event.kind.name(),
                e.event.a,
                e.event.b,
                e.event.c
            );
        }
    }
    let violations = auditor.violations();
    if violations.is_empty() {
        eprintln!("audit: 0 violations across {} observed events", auditor.observed());
    } else {
        for v in violations {
            eprintln!("AUDIT VIOLATION: {}", v.to_line());
        }
        std::process::exit(1);
    }
}

/// CI smoke: spawn one replica with an admin endpoint, scrape
/// `MetricsSnapshot` + `Health` + the exposition path, assert
/// non-empty and well-formed.
fn run_smoke() {
    let bin = std::env::var("HLF_NODE_BIN")
        .map(PathBuf::from)
        .unwrap_or_else(|_| die("--smoke wants HLF_NODE_BIN pointing at the hlf_node binary"));
    let probe = |_: &str| {
        std::net::TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.local_addr())
            .unwrap_or_else(|err| die(&format!("cannot probe a free port: {err}")))
    };
    let (listen, admin) = (probe("listen"), probe("admin"));
    let mut child = Command::new(&bin)
        .args(["--role", "replica", "--id", "0", "--n", "4", "--f", "1"])
        .arg("--listen")
        .arg(listen.to_string())
        .arg("--admin-listen")
        .arg(admin.to_string())
        .args(["--secret", "admin-smoke"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|err| die(&format!("cannot spawn {}: {err}", bin.display())));

    // The admin listener comes up within the node's bootstrap; retry
    // the dial briefly.
    let me = PeerId::Client(9900);
    let server = PeerId::Replica(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        match AdminClient::connect(admin, b"admin-smoke", me, server) {
            Ok(client) => break client,
            Err(err) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    die(&format!("admin endpoint never came up: {err}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };

    let snapshot = client
        .metrics_snapshot()
        .unwrap_or_else(|err| die(&format!("MetricsSnapshot failed: {err}")));
    assert!(
        !snapshot.metrics.is_empty(),
        "admin smoke: snapshot carried no metrics"
    );
    assert_eq!(snapshot.registry, "node-0", "unexpected registry name");
    let health = client
        .health()
        .unwrap_or_else(|err| die(&format!("Health failed: {err}")));
    let exposition = to_prometheus(std::slice::from_ref(&snapshot));
    assert!(
        exposition.contains("# TYPE "),
        "admin smoke: exposition rendered no families"
    );
    println!(
        "smoke: scraped {} metrics from {} ({} exposition bytes), health {}",
        snapshot.metrics.len(),
        snapshot.registry,
        exposition.len(),
        health.to_json()
    );

    drop(child.stdin.take());
    let _ = child.wait();
    println!("ADMIN SMOKE OK");
}

fn main() {
    let args = parse_args();
    if args.smoke {
        run_smoke();
    } else {
        run_top(&args);
    }
}
