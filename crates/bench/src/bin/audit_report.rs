//! **Cluster-audit validation report**: proves the online safety
//! auditor ([`hlf_audit::ClusterAuditor`]) is a usable oracle before
//! any chaos campaign relies on it. Three parts:
//!
//! 1. **Clean scenarios** — every existing sim scenario class (plain
//!    geo, WHEAT tentative, pipelined k = 2..4, slow replica, leader
//!    crash + view change) runs under audit and must report **zero**
//!    violations: the auditor has no false positives, including across
//!    a regency change with window re-binds and rollbacks.
//! 2. **Seeded faults** — an equivocating decide and a dropped
//!    certified value are forged at the observability layer
//!    ([`ordering_core::sim::AuditInjection`]); the auditor must catch
//!    both, naming the offending consensus instance and replica, with a
//!    reconstructed timeline slice attached.
//! 3. **Overhead** — the `bench_pipeline` workload (saturating k = 4
//!    geo run) is timed with audit off/on in interleaved pairs. The
//!    virtual-time ordered throughput must be *identical* (the auditor
//!    is passive) and the median wall-clock overhead must stay under
//!    3 %.
//!
//! Writes `BENCH_audit.json`.
//!
//! ```sh
//! cargo run --release -p bench --bin audit_report              # writes BENCH_audit.json
//! cargo run --release -p bench --bin audit_report -- out.json  # custom path
//! ```

use hlf_audit::ViolationKind;
use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, AuditInjection, GeoConfig, Protocol};
use std::time::Instant;

/// Slowed replica in the overhead workload (same as `bench_pipeline`).
const SLOW_NODE: usize = 3;
const SLOW_EXTRA_MS: u64 = 250;
/// Offered load per frontend in the overhead workload (env/s).
const OVERHEAD_RATE: f64 = 2500.0;
/// Overhead workload length: long enough that wall-clock noise stays
/// well under the 3 % budget.
const OVERHEAD_DURATION_S: u64 = 6;
/// Interleaved off/on timing pairs; the median ratio is reported.
const OVERHEAD_PAIRS: usize = 3;
/// Wall-clock overhead budget (%).
const OVERHEAD_BUDGET_PCT: f64 = 3.0;

/// One audited clean scenario's outcome.
struct CleanOutcome {
    name: &'static str,
    events: u64,
    violations: usize,
}

/// One seeded-fault scenario's outcome.
struct InjectionOutcome {
    name: &'static str,
    kind: &'static str,
    cid: u64,
    node: usize,
    detail: String,
    slice_events: usize,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_audit.json".to_string());

    println!("# audit_report: online cluster safety auditor validation\n");

    let clean = run_clean_scenarios();
    let injections = run_seeded_faults();
    let overhead = measure_overhead();

    let json = to_json(&clean, &injections, &overhead);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(err) => println!("could not write {out_path}: {err}"),
    }
}

/// Short audited run config shared by the clean scenarios.
fn quick(protocol: Protocol) -> GeoConfig {
    let mut config = GeoConfig::new(protocol).with_audit();
    config.duration = SimTime::from_secs(12);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;
    config
}

fn run_clean_scenarios() -> Vec<CleanOutcome> {
    println!("## clean scenarios (zero violations required)\n");
    let mut crash = quick(Protocol::BftSmart)
        .with_request_timeout_ms(2_000)
        .with_crash_replica(0, SimTime::from_secs(4));
    crash.duration = SimTime::from_secs(20);
    let scenarios: Vec<(&'static str, GeoConfig)> = vec![
        ("geo bftsmart k=1", quick(Protocol::BftSmart)),
        ("geo wheat tentative", quick(Protocol::Wheat)),
        ("pipelined k=2", quick(Protocol::BftSmart).with_pipeline_depth(2)),
        ("pipelined k=3", quick(Protocol::BftSmart).with_pipeline_depth(3)),
        ("pipelined k=4", quick(Protocol::BftSmart).with_pipeline_depth(4)),
        (
            "slow replica (250 ms)",
            quick(Protocol::BftSmart).with_slow_replica(SLOW_NODE, SimTime::from_millis(250)),
        ),
        ("leader crash -> view change", crash),
    ];

    let mut outcomes = Vec::new();
    for (name, config) in scenarios {
        let result = run_geo_experiment(&config);
        let audit = result.audit.expect("audit requested");
        for violation in &audit.violations {
            println!("  FALSE POSITIVE in {name}: {}", violation.to_line());
        }
        assert!(
            audit.violations.is_empty(),
            "{name}: auditor reported {} false positives",
            audit.violations.len()
        );
        println!("  ok {name}: {} events audited, 0 violations", audit.events);
        outcomes.push(CleanOutcome {
            name,
            events: audit.events,
            violations: audit.violations.len(),
        });
    }
    println!();
    outcomes
}

fn run_seeded_faults() -> Vec<InjectionOutcome> {
    println!("## seeded faults (detection required)\n");
    let seeds: Vec<(&'static str, AuditInjection, ViolationKind)> = vec![
        (
            "equivocating decide",
            AuditInjection::EquivocatingDecide { node: 2, nth: 5 },
            ViolationKind::Equivocation,
        ),
        (
            "dropped certified value",
            AuditInjection::DroppedCertifiedValue { node: 1, nth: 7 },
            ViolationKind::CertifiedValueDropped,
        ),
    ];

    let mut outcomes = Vec::new();
    for (name, injection, expect) in seeds {
        let config = quick(Protocol::BftSmart).with_injection(injection);
        let result = run_geo_experiment(&config);
        let audit = result.audit.expect("audit requested");
        let violation = audit
            .violations
            .iter()
            .find(|v| v.kind == expect)
            .unwrap_or_else(|| panic!("{name}: seeded fault was NOT detected"));
        println!("  caught {name}:");
        println!("    {}", violation.to_line());
        println!("    timeline tail ({} events attached):", violation.slice.len());
        for (node, event) in violation.slice.iter().rev().take(4).rev() {
            println!(
                "      node {node} t={}us {} a={:#x} b={:#x} c={:#x}",
                event.at_us,
                event.kind.name(),
                event.a,
                event.b,
                event.c
            );
        }
        let (node, nth) = match injection {
            AuditInjection::EquivocatingDecide { node, nth } => (node, nth),
            AuditInjection::DroppedCertifiedValue { node, nth } => (node, nth),
        };
        assert_eq!(violation.node, node, "{name}: wrong replica named");
        let _ = nth;
        outcomes.push(InjectionOutcome {
            name,
            kind: violation.kind.name(),
            cid: violation.cid,
            node: violation.node,
            detail: violation.detail.clone(),
            slice_events: violation.slice.len(),
        });
    }
    println!();
    outcomes
}

/// Wall-clock + virtual-throughput comparison of the `bench_pipeline`
/// workload with audit off vs on.
struct Overhead {
    tx_s_off: f64,
    tx_s_on: f64,
    wall_off_s: f64,
    wall_on_s: f64,
    overhead_pct: f64,
    events: u64,
}

fn overhead_config(audit: bool) -> GeoConfig {
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_slow_replica(SLOW_NODE, SimTime::from_millis(SLOW_EXTRA_MS))
        .with_pipeline_depth(4);
    config.duration = SimTime::from_secs(OVERHEAD_DURATION_S);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = OVERHEAD_RATE;
    if audit {
        config.audit = true;
    }
    config
}

fn measure_overhead() -> Overhead {
    println!("## auditor overhead on the bench_pipeline workload (k=4, saturated)\n");
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    let mut ratios = Vec::new();
    let mut tx_off = 0.0;
    let mut tx_on = 0.0;
    let mut events = 0;
    for pair in 0..OVERHEAD_PAIRS {
        let start = Instant::now();
        let plain = run_geo_experiment(&overhead_config(false));
        let wall_off = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let audited = run_geo_experiment(&overhead_config(true));
        let wall_on = start.elapsed().as_secs_f64();
        tx_off = plain.throughput;
        tx_on = audited.throughput;
        let audit = audited.audit.expect("audit requested");
        assert!(audit.violations.is_empty(), "overhead run must be clean");
        events = audit.events;
        println!(
            "  pair {pair}: off {wall_off:.2}s on {wall_on:.2}s \
             ({:.1} tx/s vs {:.1} tx/s virtual)",
            plain.throughput, audited.throughput
        );
        offs.push(wall_off);
        ons.push(wall_on);
        ratios.push(wall_on / wall_off);
    }
    // The auditor is passive: virtual-time throughput must be bitwise
    // identical, only wall-clock may move.
    assert!(
        tx_off == tx_on,
        "audit perturbed the simulated run: {tx_off} vs {tx_on} tx/s"
    );
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    let wall_off_s = median(&mut offs);
    let wall_on_s = median(&mut ons);
    println!(
        "\n  median wall {wall_off_s:.2}s -> {wall_on_s:.2}s: \
         {overhead_pct:+.2}% (budget {OVERHEAD_BUDGET_PCT}%), \
         {events} events audited\n"
    );
    assert!(
        overhead_pct < OVERHEAD_BUDGET_PCT,
        "auditor wall-clock overhead {overhead_pct:.2}% exceeds {OVERHEAD_BUDGET_PCT}%"
    );
    Overhead {
        tx_s_off: tx_off,
        tx_s_on: tx_on,
        wall_off_s,
        wall_on_s,
        overhead_pct,
        events,
    }
}

/// Hand-rolled JSON (no serde in-tree), matching the other BENCH_*.json
/// emitters.
fn to_json(clean: &[CleanOutcome], injections: &[InjectionOutcome], overhead: &Overhead) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"clean_scenarios\": [\n");
    for (i, c) in clean.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"violations\": {}}}{}\n",
            c.name,
            c.events,
            c.violations,
            if i + 1 < clean.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"seeded_faults\": [\n");
    for (i, inj) in injections.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"detected\": true, \"kind\": \"{}\", \
             \"cid\": {}, \"node\": {}, \"slice_events\": {}, \"detail\": \"{}\"}}{}\n",
            inj.name,
            inj.kind,
            inj.cid,
            inj.node,
            inj.slice_events,
            inj.detail.replace('"', "'"),
            if i + 1 < injections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"workload\": \"bench_pipeline k=4\", \
         \"ordered_tx_s_audit_off\": {:.1}, \"ordered_tx_s_audit_on\": {:.1}, \
         \"wall_s_audit_off\": {:.2}, \"wall_s_audit_on\": {:.2}, \
         \"wall_overhead_pct\": {:.2}, \"budget_pct\": {:.1}, \"events_audited\": {}}}\n",
        overhead.tx_s_off,
        overhead.tx_s_on,
        overhead.wall_off_s,
        overhead.wall_on_s,
        overhead.overhead_pct,
        OVERHEAD_BUDGET_PCT,
        overhead.events
    ));
    out.push_str("}\n");
    out
}
