//! **Pipelined-consensus benchmark**: the headline number for the
//! sliding-window tentpole. Runs the 4-replica BFT-SMaRt geo sim
//! (f = 1, replica 3 slowed by 250 ms per link — the exact topology of
//! `BENCH_trace.json`) at an offered load high enough to saturate the
//! classic one-slot-at-a-time protocol, then repeats the identical run
//! with the consensus window opened to k = 2 and k = 4 in-flight slots.
//!
//! With k = 1 the leader cannot propose slot s+1 until slot s decides,
//! so throughput is capped at one `batch_max` per WAN round trip and
//! the backlog (hence end-to-end latency) grows for the whole run. With
//! k = 4 the WRITE/ACCEPT rounds of four slots overlap on the wire, the
//! cluster absorbs the same load with headroom, and the median latency
//! falls back to the uncongested figure.
//!
//! Acceptance (asserted here, recorded in `BENCH_pipeline.json`):
//! ordered throughput at k = 4 is **≥ 2×** the k = 1 baseline, at an
//! aggregate p50 end-to-end latency **no worse** than the baseline.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pipeline              # writes BENCH_pipeline.json
//! cargo run --release -p bench --bin bench_pipeline -- out.json  # custom path
//! ```

use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};

/// Replica slowed in the sim (São Paulo; not the leader) — same as
/// `trace_report` / `BENCH_trace.json`.
const SLOW_NODE: usize = 3;
/// Extra one-way delay on every link touching the slow replica.
const SLOW_EXTRA_MS: u64 = 250;
/// Offered load per frontend (envelopes/s). Chosen so the k = 1
/// single-slot protocol saturates (one batch per WAN round trip falls
/// short of the aggregate rate) while k = 4 keeps up with headroom.
const RATE_PER_FRONTEND: f64 = 2500.0;
/// Simulated run length and measurement warm-up.
const DURATION_S: u64 = 10;
const WARMUP_S: u64 = 2;
/// Window depths measured; index 0 is the baseline, the last is the
/// headline configuration.
const DEPTHS: [usize; 3] = [1, 2, 4];

/// One run's summary: ordered throughput plus aggregate latency.
struct RunSummary {
    depth: usize,
    tx_s: f64,
    p50_ms: f64,
    p90_ms: f64,
    samples: usize,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    println!("# bench_pipeline: 4-replica BFT-SMaRt geo sim, f=1");
    println!(
        "# replica {SLOW_NODE} slowed by {SLOW_EXTRA_MS} ms/link, \
         {RATE_PER_FRONTEND} env/s per frontend, {DURATION_S} s run \
         ({WARMUP_S} s warm-up)\n"
    );

    let runs: Vec<RunSummary> = DEPTHS.iter().map(|&depth| run_depth(depth)).collect();

    println!("{:>5} {:>12} {:>10} {:>10} {:>9}", "depth", "ordered/s", "p50 ms", "p90 ms", "samples");
    for run in &runs {
        println!(
            "{:>5} {:>12.1} {:>10.1} {:>10.1} {:>9}",
            run.depth, run.tx_s, run.p50_ms, run.p90_ms, run.samples
        );
    }

    let baseline = &runs[0];
    let pipelined = &runs[runs.len() - 1];
    let speedup = pipelined.tx_s / baseline.tx_s;
    println!(
        "\nk={} vs k={}: {:.2}x throughput, p50 {:.1} ms -> {:.1} ms",
        baseline.depth, pipelined.depth, speedup, baseline.p50_ms, pipelined.p50_ms
    );

    assert!(
        speedup >= 2.0,
        "pipelining must at least double saturated geo throughput \
         (k={} {:.1}/s vs k={} {:.1}/s = {:.2}x)",
        baseline.depth,
        baseline.tx_s,
        pipelined.depth,
        pipelined.tx_s,
        speedup
    );
    assert!(
        pipelined.p50_ms <= baseline.p50_ms,
        "pipelined p50 must be no worse than the saturated baseline \
         ({:.1} ms vs {:.1} ms)",
        pipelined.p50_ms,
        baseline.p50_ms
    );

    let json = to_json(&runs, speedup);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(err) => println!("could not write {out_path}: {err}"),
    }
}

/// Runs the geo experiment at one window depth and summarises it.
fn run_depth(depth: usize) -> RunSummary {
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_slow_replica(SLOW_NODE, SimTime::from_millis(SLOW_EXTRA_MS))
        .with_pipeline_depth(depth);
    config.duration = SimTime::from_secs(DURATION_S);
    config.warmup = SimTime::from_secs(WARMUP_S);
    config.rate_per_frontend = RATE_PER_FRONTEND;
    let result = run_geo_experiment(&config);

    // Aggregate p50/p90 across frontends, weighted by sample count:
    // the per-frontend medians are close (same backlog dominates), so
    // the weighted mean of medians is a faithful aggregate.
    let total: usize = result.frontends.iter().map(|f| f.samples).sum();
    assert!(total > 0, "depth {depth}: no latency samples after warm-up");
    let p50_ms = result
        .frontends
        .iter()
        .map(|f| f.median_ms * f.samples as f64)
        .sum::<f64>()
        / total as f64;
    let p90_ms = result
        .frontends
        .iter()
        .map(|f| f.p90_ms * f.samples as f64)
        .sum::<f64>()
        / total as f64;
    RunSummary {
        depth,
        tx_s: result.throughput,
        p50_ms,
        p90_ms,
        samples: total,
    }
}

/// Hand-rolled JSON (no serde in-tree), matching the other BENCH_*.json
/// emitters.
fn to_json(runs: &[RunSummary], speedup: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"config\": {");
    out.push_str(&format!(
        "\"protocol\": \"bftsmart\", \"n\": 4, \"f\": 1, \
         \"slow_replica\": {SLOW_NODE}, \"slow_extra_ms\": {SLOW_EXTRA_MS}, \
         \"rate_per_frontend\": {RATE_PER_FRONTEND}, \
         \"duration_s\": {DURATION_S}, \"warmup_s\": {WARMUP_S}"
    ));
    out.push_str("},\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pipeline_depth\": {}, \"ordered_tx_s\": {:.1}, \
             \"p50_ms\": {:.1}, \"p90_ms\": {:.1}, \"samples\": {}}}{}\n",
            run.depth,
            run.tx_s,
            run.p50_ms,
            run.p90_ms,
            run.samples,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let baseline = &runs[0];
    let pipelined = &runs[runs.len() - 1];
    out.push_str(&format!(
        "  \"baseline\": {{\"pipeline_depth\": {}, \"ordered_tx_s\": {:.1}, \"p50_ms\": {:.1}}},\n",
        baseline.depth, baseline.tx_s, baseline.p50_ms
    ));
    out.push_str(&format!(
        "  \"pipelined\": {{\"pipeline_depth\": {}, \"ordered_tx_s\": {:.1}, \"p50_ms\": {:.1}}},\n",
        pipelined.depth, pipelined.tx_s, pipelined.p50_ms
    ));
    out.push_str(&format!("  \"speedup\": {speedup:.2}\n}}\n"));
    out
}
