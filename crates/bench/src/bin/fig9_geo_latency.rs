//! **Figure 9 (a-d)**: geo-distributed latency with blocks of **100**
//! envelopes — the paper's second WAN experiment, showing latencies up
//! to ~63 ms higher than Figure 8 because block generation slows down
//! at a fixed workload.
//!
//! ```sh
//! cargo run --release -p bench --bin fig9_geo_latency
//! cargo run --release -p bench --bin fig9_geo_latency -- --obs  # + phase table
//! ```

use bench::print_phase_breakdown;
use hlf_obs::Snapshot;
use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};

fn main() {
    let collect_obs = std::env::args().any(|a| a == "--obs");
    println!("# Figure 9: EC2-style latency, 4 receivers, blocks of 100 envelopes");
    println!("# per frontend: median / p90 milliseconds\n");

    let envelope_sizes = [40usize, 200, 1024, 4096];
    let mut obs_tables: Vec<(&str, Vec<Snapshot>)> = Vec::new();

    // Also re-run block size 10 at 1 KiB for the fig8-vs-fig9 delta the
    // paper calls out.
    let mut fig9_reference = 0.0;

    for &envelope_size in &envelope_sizes {
        println!("## envelope size {envelope_size} B");
        println!(
            "{:<12} {:>22} {:>22}",
            "frontend", "BFT-SMaRt med/p90", "WHEAT med/p90"
        );
        let mut rows: Vec<Vec<(String, f64, f64)>> = Vec::new();
        for protocol in [Protocol::BftSmart, Protocol::Wheat] {
            let mut config = GeoConfig::new(protocol);
            config.envelope_size = envelope_size;
            config.block_size = 100;
            config.duration = SimTime::from_secs(45);
            config.warmup = SimTime::from_secs(5);
            config.rate_per_frontend = 275.0;
            config.collect_obs = collect_obs && envelope_size == 1024;
            let result = run_geo_experiment(&config);
            if let Some(obs) = result.obs {
                let name = match protocol {
                    Protocol::BftSmart => "BFT-SMaRt",
                    Protocol::Wheat => "WHEAT",
                };
                obs_tables.push((name, obs));
            }
            rows.push(
                result
                    .frontends
                    .iter()
                    .map(|f| (f.region.name().to_string(), f.median_ms, f.p90_ms))
                    .collect(),
            );
            if envelope_size == 1024 && protocol == Protocol::BftSmart {
                fig9_reference = result.frontends[0].median_ms;
            }
        }
        for ((region, bft_median, bft_p90), (_, wheat_median, wheat_p90)) in
            rows[0].iter().zip(&rows[1])
        {
            println!(
                "{region:<12} {bft_median:>12.0} / {bft_p90:<7.0} {wheat_median:>12.0} / {wheat_p90:<7.0}"
            );
        }
        println!();
    }

    // Delta vs figure 8 (block size 10) at the Canada frontend, 1 KiB.
    let mut config = GeoConfig::new(Protocol::BftSmart);
    config.envelope_size = 1024;
    config.block_size = 10;
    config.duration = SimTime::from_secs(45);
    config.warmup = SimTime::from_secs(5);
    config.rate_per_frontend = 275.0;
    let fig8 = run_geo_experiment(&config);
    let fig8_reference = fig8.frontends[0].median_ms;

    println!(
        "block-size effect (Canada, 1 KiB, BFT-SMaRt): {fig8_reference:.0} ms at \
         10 env/block vs {fig9_reference:.0} ms at 100 env/block \
         (+{:.0} ms; paper: up to 63 ms higher)",
        fig9_reference - fig8_reference
    );

    for (protocol_name, snapshots) in &obs_tables {
        println!("\n# {protocol_name}, 1 KiB envelopes, blocks of 100");
        print_phase_breakdown(snapshots);
    }
}
