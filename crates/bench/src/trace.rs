//! Flight-dump → per-transaction timeline merge, shared by
//! `trace_report` and the view-change regression tests.
//!
//! Phase boundaries (propose, WRITE quorum, decide, sign) are defined
//! at the replica that *led the deciding proposal*, so deltas of
//! adjacent boundaries telescope and the phase sum equals
//! deliver − submit exactly. Before PR 7 the merge hardcoded
//! `geo-node-0`; that breaks the moment a regency change moves the
//! leadership. Now every replica's `Propose` events (which carry the
//! regency in `b`, and are re-recorded when a sync re-binds a slot to a
//! new regency) vote on a per-cid *deciding regency* — the highest
//! regency any replica saw proposed for that cid — and the boundaries
//! are read from that regency's leader (`regency % n`). A tx that rode
//! through a view change is therefore attributed to the new leader's
//! re-proposal, keeping per-tx phase attribution exact at any pipeline
//! depth.

use hlf_obs::flight::EventKind;
use hlf_obs::FlightDump;
use std::collections::{BTreeMap, HashMap};

/// One fully-attributed transaction timeline (all times are virtual
/// microseconds since sim start).
pub struct Timeline {
    pub trace: u64,
    pub client: u32,
    pub seq: u64,
    pub cid: u64,
    pub block: u64,
    /// Regency of the deciding proposal for `cid`.
    pub regency: u64,
    /// Replica the boundaries were read from (`regency % n`).
    pub leader: usize,
    pub submit_us: u64,
    pub deliver_us: u64,
    /// relay, write, accept, sign, collect — in order.
    pub phases: [u64; 5],
}

pub const PHASE_NAMES: [&str; 5] = ["relay", "write", "accept", "sign", "collect"];

/// Per-replica consensus/signing boundary events.
#[derive(Default)]
struct NodeEvents {
    /// (cid, regency) → propose timestamp.
    propose: HashMap<(u64, u64), u64>,
    /// cid → latest WRITE-quorum timestamp (re-binds re-collect votes,
    /// so the deciding quorum is the last one).
    quorum: HashMap<u64, u64>,
    /// cid → decide timestamp.
    decide: HashMap<u64, u64>,
    /// block number → signature-done timestamp.
    sign_done: HashMap<u64, u64>,
}

/// Joins the per-recorder dumps into complete per-transaction
/// timelines. Incomplete transactions (in flight at run end, evicted
/// from a ring, or decided on a crashed leader that never signed) are
/// skipped.
pub fn merge_timelines(dumps: &[FlightDump]) -> Vec<Timeline> {
    let mut tx_cid: HashMap<u64, u64> = HashMap::new();
    let mut deciding_regency: HashMap<u64, u64> = HashMap::new();
    let mut nodes: BTreeMap<usize, NodeEvents> = BTreeMap::new();
    let mut submit_us: HashMap<u64, (u64, u32, u64)> = HashMap::new();
    let mut deliver_us: HashMap<u64, (u64, u64)> = HashMap::new();

    for dump in dumps {
        if let Some(index) = dump
            .node
            .strip_prefix("geo-node-")
            .and_then(|s| s.parse::<usize>().ok())
        {
            let node = nodes.entry(index).or_default();
            for e in &dump.events {
                match e.kind {
                    EventKind::TxInBatch => {
                        tx_cid.insert(e.a, e.b);
                    }
                    EventKind::Propose => {
                        let r = deciding_regency.entry(e.a).or_insert(e.b);
                        *r = (*r).max(e.b);
                        node.propose.insert((e.a, e.b), e.at_us);
                    }
                    EventKind::WriteQuorum => {
                        let at = node.quorum.entry(e.a).or_insert(e.at_us);
                        *at = (*at).max(e.at_us);
                    }
                    EventKind::Decide => {
                        node.decide.insert(e.a, e.at_us);
                    }
                    EventKind::SignDone => {
                        node.sign_done.insert(e.a, e.at_us);
                    }
                    _ => {}
                }
            }
        } else if dump.node.starts_with("geo-frontend-") {
            for e in &dump.events {
                match e.kind {
                    EventKind::Submit => {
                        submit_us.insert(e.a, (e.at_us, e.b as u32, e.c));
                    }
                    EventKind::Deliver => {
                        deliver_us.insert(e.a, (e.at_us, e.b));
                    }
                    _ => {}
                }
            }
        }
    }
    let n = nodes.keys().max().map(|&i| i + 1).unwrap_or(0);
    if n == 0 {
        return Vec::new();
    }

    let mut timelines = Vec::new();
    for (&trace, &(submitted, client, seq)) in &submit_us {
        let Some(&(delivered, block)) = deliver_us.get(&trace) else {
            continue; // still in flight at run end
        };
        let Some(&cid) = tx_cid.get(&trace) else {
            continue; // evicted from every replica ring
        };
        let Some(&regency) = deciding_regency.get(&cid) else {
            continue;
        };
        let leader = regency as usize % n;
        let Some(node) = nodes.get(&leader) else {
            continue;
        };
        let (Some(&p), Some(&w), Some(&d), Some(&s)) = (
            node.propose.get(&(cid, regency)),
            node.quorum.get(&cid),
            node.decide.get(&cid),
            node.sign_done.get(&block),
        ) else {
            continue; // boundary lost (e.g. the leader crashed mid-slot)
        };
        timelines.push(Timeline {
            trace,
            client,
            seq,
            cid,
            block,
            regency,
            leader,
            submit_us: submitted,
            deliver_us: delivered,
            phases: [
                p.saturating_sub(submitted),
                w.saturating_sub(p),
                d.saturating_sub(w),
                s.saturating_sub(d),
                delivered.saturating_sub(s),
            ],
        });
    }
    timelines.sort_by_key(|t| (t.submit_us, t.trace));
    timelines
}
