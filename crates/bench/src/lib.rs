//! Shared harness code for the paper-reproduction benchmarks.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DSN
//! 2018 paper (see `DESIGN.md` §4 for the experiment index); this
//! library holds the workload drivers they share.

pub mod trace;

use hlf_wire::Bytes;
use hlf_consensus::messages::Batch;
use hlf_obs::Snapshot;
use hlf_smr::app::{Application, Outbound};
use hlf_smr::runtime::{ClusterRuntime, RuntimeOptions};
use ordering_core::frontend::{Frontend, FrontendConfig};
use ordering_core::service::{OrderingService, ServiceOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Envelope sizes the paper evaluates (§6.2): a SHA-256 hash, three
/// ECDSA endorsement signatures, and 1 / 4 KiB transactions.
pub const PAPER_ENVELOPE_SIZES: [usize; 4] = [40, 200, 1024, 4096];
/// Receiver counts the paper sweeps.
pub const PAPER_RECEIVERS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Cluster sizes (tolerating f = 1, 2, 3).
pub const PAPER_CLUSTERS: [(usize, usize); 3] = [(4, 1), (7, 2), (10, 3)];

/// One LAN-throughput measurement point (one bar of Fig. 7).
#[derive(Clone, Debug)]
pub struct LanConfig {
    /// Cluster size.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// Envelopes per block (10 or 100 in the paper).
    pub block_size: usize,
    /// Envelope payload bytes.
    pub envelope_size: usize,
    /// Number of receiver frontends.
    pub receivers: usize,
    /// Signer threads per node.
    pub signing_threads: usize,
    /// Measurement window (after 1 s warm-up).
    pub measure: Duration,
    /// Frontends verify orderer signatures and accept after `f + 1`
    /// copies (paper footnote 8) instead of matching `2f + 1`.
    pub verify_frontends: bool,
    /// Sign each block twice (paper footnote 10).
    pub double_sign: bool,
    /// Capture per-node obs snapshots and return them in the result.
    pub collect_obs: bool,
}

impl LanConfig {
    /// A point with paper-style defaults.
    pub fn new(n: usize, f: usize) -> LanConfig {
        LanConfig {
            n,
            f,
            block_size: 10,
            envelope_size: 1024,
            receivers: 1,
            signing_threads: paper_signing_threads(),
            measure: Duration::from_secs(3),
            verify_frontends: false,
            double_sign: false,
            collect_obs: false,
        }
    }
}

/// Signer threads matching the host (the paper uses 16, one per
/// hardware thread of its Xeon E5520 pair).
pub fn paper_signing_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8)
        .min(16)
}

/// Result of one LAN-throughput point.
#[derive(Clone, Debug)]
pub struct LanResult {
    /// Envelopes ordered per second, measured at node 0 (as in the
    /// paper).
    pub tx_per_sec: f64,
    /// Blocks generated per second at node 0.
    pub blocks_per_sec: f64,
    /// Total envelopes ordered during the window.
    pub envelopes: u64,
    /// Obs snapshots (per node, `clients`, `frontends`), when
    /// [`LanConfig::collect_obs`] was set.
    pub obs: Option<Vec<Snapshot>>,
}

/// Runs one LAN throughput measurement: an in-process ordering cluster,
/// `receivers` subscriber frontends draining blocks, and submitter
/// threads keeping the cluster saturated under a bounded outstanding
/// window.
pub fn run_lan_throughput(config: &LanConfig) -> LanResult {
    let mut service = OrderingService::start(
        config.n,
        ServiceOptions::new(config.f)
            .with_block_size(config.block_size)
            .with_signing_threads(config.signing_threads)
            // Saturation benchmarks keep a standing backlog; the
            // leader is healthy, so do not let request age trigger
            // regency churn.
            .with_request_timeout_ms(60_000)
            .with_frontend_verification(config.verify_frontends)
            .with_double_sign(config.double_sign),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicU64::new(0));

    // Receiver frontends: subscribe and drain.
    let mut receiver_threads = Vec::new();
    for slot in 0..config.receivers {
        let mut frontend_config =
            FrontendConfig::new(hlf_wire::ClientId(5000 + slot as u32), config.n, config.f);
        if config.verify_frontends {
            frontend_config =
                frontend_config.with_verification(service.orderer_keys().to_vec());
        }
        let frontend = Frontend::connect(service.network(), frontend_config);
        let stop = Arc::clone(&stop);
        receiver_threads.push(std::thread::spawn(move || {
            let mut frontend = frontend;
            while !stop.load(Ordering::Relaxed) {
                let _ = frontend.next_block(Duration::from_millis(20));
            }
        }));
    }

    // Submitter frontends: blast envelopes with a bounded window
    // against node 0's executed count (flow control standing in for
    // the TCP backpressure real clients get).
    // Outstanding-request window: enough to saturate the pipeline
    // (multiple consensus batches) without growing unbounded queues —
    // real BFT-SMaRt clients are similarly bounded.
    let window = 4_000u64;
    let mut submitter_threads = Vec::new();
    for slot in 0..2 {
        let mut frontend = service.frontend();
        let stop = Arc::clone(&stop);
        let submitted = Arc::clone(&submitted);
        let size = config.envelope_size;
        let executed_probe = service.executed_probe(0);
        submitter_threads.push(std::thread::spawn(move || {
            let mut i: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                if submitted.load(Ordering::Relaxed).saturating_sub(executed_probe()) > window {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let mut payload = vec![0u8; size.max(16)];
                payload[..8].copy_from_slice(&i.to_le_bytes());
                payload[8] = slot as u8;
                frontend.submit(Bytes::from(payload));
                submitted.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }

    // Warm-up, then measure at node 0.
    std::thread::sleep(Duration::from_secs(1));
    let probe = service.executed_probe(0);
    let start_count = probe();
    let start = Instant::now();
    std::thread::sleep(config.measure);
    let elapsed = start.elapsed();
    let envelopes = probe() - start_count;

    stop.store(true, Ordering::Relaxed);
    for thread in submitter_threads {
        let _ = thread.join();
    }
    for thread in receiver_threads {
        let _ = thread.join();
    }
    let obs = config.collect_obs.then(|| service.obs_snapshots());
    service.shutdown();

    let tx_per_sec = envelopes as f64 / elapsed.as_secs_f64();
    LanResult {
        tx_per_sec,
        blocks_per_sec: tx_per_sec / config.block_size as f64,
        envelopes,
        obs,
    }
}

/// Latency histograms worth surfacing in a per-phase breakdown table,
/// with their units.
const PHASE_METRICS: &[(&str, &str)] = &[
    ("consensus.replica.write_phase_ms", "ms"),
    ("consensus.replica.accept_phase_ms", "ms"),
    ("consensus.replica.decide_ms", "ms"),
    ("smr.node.request_decide_us", "us"),
    ("core.signing.queue_wait_us", "us"),
    ("core.signing.sign_us", "us"),
    ("core.frontend.collect_round_us", "us"),
    ("smr.client.invoke_us", "us"),
];

/// Prints the `--obs` per-phase latency breakdown: one row per
/// populated phase histogram in each registry.
pub fn print_phase_breakdown(snapshots: &[Snapshot]) {
    println!("## per-phase latency breakdown");
    println!(
        "{:<12} {:<36} {:>4} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "registry", "metric", "unit", "count", "p50", "p90", "p99", "max"
    );
    for snap in snapshots {
        for &(name, unit) in PHASE_METRICS {
            let Some(h) = snap.histogram(name) else {
                continue;
            };
            if h.count == 0 {
                continue;
            }
            println!(
                "{:<12} {:<36} {:>4} {:>9} {:>8} {:>8} {:>8} {:>8}",
                snap.registry,
                name,
                unit,
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
    }
}

/// An application that does nothing — used to measure the raw
/// BFT-SMaRt ordering rate (the `TP_bftsmart` term of the paper's
/// equation 1) without block cutting or signing.
#[derive(Debug, Default)]
pub struct NullApp;

impl Application for NullApp {
    fn execute_batch(&mut self, _cid: u64, _batch: &Batch, _tentative: bool) -> Vec<Outbound> {
        Vec::new()
    }
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }
    fn restore(&mut self, _snapshot: &[u8]) {}
}

/// Measures raw consensus ordering throughput (no blocks, no signing)
/// for `envelope_size` payloads on an `n`-node cluster.
pub fn run_raw_consensus_throughput(
    n: usize,
    f: usize,
    envelope_size: usize,
    measure: Duration,
) -> f64 {
    let cluster = ClusterRuntime::start(
        n,
        RuntimeOptions::classic(f).with_request_timeout_ms(60_000),
        |_| Box::new(NullApp),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicU64::new(0));
    let window = 4_000u64;

    let mut threads = Vec::new();
    for slot in 0..2 {
        let mut proxy = cluster.proxy_with(hlf_smr::client::ProxyConfig::classic(
            hlf_wire::ClientId(7000 + slot as u32),
            n,
            f,
        ));
        let stop = Arc::clone(&stop);
        let submitted = Arc::clone(&submitted);
        let stats = cluster_stats_probe(&cluster, 0);
        threads.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if submitted.load(Ordering::Relaxed).saturating_sub(stats()) > window {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let mut payload = vec![0u8; envelope_size.max(16)];
                payload[..8].copy_from_slice(&i.to_le_bytes());
                payload[8] = slot;
                proxy.invoke_async(payload);
                submitted.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }

    std::thread::sleep(Duration::from_secs(1));
    let probe = cluster_stats_probe(&cluster, 0);
    let start_count = probe();
    let start = Instant::now();
    std::thread::sleep(measure);
    let elapsed = start.elapsed();
    let done = probe() - start_count;

    stop.store(true, Ordering::Relaxed);
    for thread in threads {
        let _ = thread.join();
    }
    cluster.shutdown();
    done as f64 / elapsed.as_secs_f64()
}

fn cluster_stats_probe(
    cluster: &ClusterRuntime,
    node: usize,
) -> impl Fn() -> u64 + Send + 'static {
    // NodeStats lives behind an Arc owned by the handle; expose a
    // cheap sampling closure.
    let stats = cluster.stats_arc(node);
    move || stats.executed_requests()
}

/// Formats a throughput in the paper's "ktrans/sec" unit.
pub fn ktps(tx_per_sec: f64) -> String {
    format!("{:.1}", tx_per_sec / 1000.0)
}

/// Measures replicated-counter throughput at a given checkpoint period
/// (ablation ABL3: the paper's §5.2 claims frequent checkpoints are
/// cheap because the ordering state is tiny).
pub fn run_checkpoint_sweep_point(
    n: usize,
    f: usize,
    checkpoint_interval: u64,
    measure: Duration,
) -> f64 {
    let cluster = ClusterRuntime::start(
        n,
        RuntimeOptions::classic(f)
            .with_request_timeout_ms(60_000)
            .with_checkpoint_interval(checkpoint_interval),
        |_| Box::new(NullApp),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicU64::new(0));
    let window = 4_000u64;
    let mut threads = Vec::new();
    for slot in 0..2u8 {
        let mut proxy = cluster.proxy_with(hlf_smr::client::ProxyConfig::classic(
            hlf_wire::ClientId(8000 + slot as u32),
            n,
            f,
        ));
        let stop = Arc::clone(&stop);
        let submitted = Arc::clone(&submitted);
        let stats = cluster.stats_arc(0);
        threads.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if submitted
                    .load(Ordering::Relaxed)
                    .saturating_sub(stats.executed_requests())
                    > window
                {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                let mut payload = vec![0u8; 256];
                payload[..8].copy_from_slice(&i.to_le_bytes());
                payload[8] = slot;
                proxy.invoke_async(payload);
                submitted.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        }));
    }
    std::thread::sleep(Duration::from_secs(1));
    let stats = cluster.stats_arc(0);
    let start_count = stats.executed_requests();
    let start = Instant::now();
    std::thread::sleep(measure);
    let elapsed = start.elapsed();
    let done = stats.executed_requests() - start_count;
    stop.store(true, Ordering::Relaxed);
    for thread in threads {
        let _ = thread.join();
    }
    cluster.shutdown();
    done as f64 / elapsed.as_secs_f64()
}
