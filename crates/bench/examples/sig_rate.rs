//! Quick single-thread ECDSA signing / verification rate check — the
//! per-core primitive rate behind the paper's Figure 6 sweep.
//!
//! ```sh
//! cargo run --release -p bench --example sig_rate
//! ```

use hlf_crypto::ecdsa::SigningKey;
use hlf_crypto::sha256::sha256;
use std::hint::black_box;
use std::time::Instant;

fn rate(label: &str, iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        op(); // warm-up (also builds the fixed-base comb table)
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:>20}: {:>8.1} us/op  {:>9.0} ops/sec", per * 1e6, 1.0 / per);
    1.0 / per
}

fn main() {
    let key = SigningKey::from_seed(b"sig-rate");
    let digest = sha256(b"block header");
    let signature = key.sign_digest(&digest);
    let vk = *key.verifying_key();

    println!("single-thread P-256 ECDSA rates (fast paths):");
    let sign = rate("sign", 2000, || {
        black_box(key.sign_digest(black_box(&digest)));
    });
    let verify = rate("verify", 1000, || {
        vk.verify_digest(black_box(&digest), black_box(&signature))
            .unwrap();
    });
    println!("\nreference double-and-add paths (same binary):");
    rate("sign_reference", 300, || {
        black_box(key.sign_digest_reference(black_box(&digest)));
    });
    rate("verify_reference", 300, || {
        vk.verify_digest_reference(black_box(&digest), black_box(&signature))
            .unwrap();
    });
    println!(
        "\nFig. 6 scaling estimate: {:.1} ksig/s at 16 threads; a frontend \
         core checks ~{:.0} block signatures/s",
        sign * 16.0 / 1000.0,
        verify
    );
}
