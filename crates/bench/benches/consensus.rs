//! Criterion benchmarks for the consensus state machine: cost of a
//! full instance (PROPOSE / WRITE / ACCEPT with real signatures) under
//! the deterministic harness, and of the synchronization-phase
//! selection function.

use hlf_wire::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hlf_consensus::messages::{Request, StopData, Vote, VotePhase};
use hlf_consensus::quorum::QuorumSystem;
use hlf_consensus::sync::select;
use hlf_consensus::testing::{test_keys, Cluster};
use hlf_wire::{ClientId, NodeId};
use std::hint::black_box;

fn bench_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("instance-n{n}"), |b| {
            let mut cluster = Cluster::classic(n, f);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                cluster.submit_to_all(Request::new(
                    ClientId(1),
                    seq,
                    Bytes::from(vec![0u8; 256]),
                ));
                cluster.run_to_quiescence();
                black_box(cluster.steps())
            });
        });
    }
    group.finish();
}

fn bench_batched_instance(c: &mut Criterion) {
    // One instance carrying a 100-request batch: the per-request
    // amortization that makes signed votes cheap.
    c.bench_function("consensus/instance-batch100", |b| {
        let mut cluster = Cluster::classic(4, 1);
        let mut seq = 0u64;
        b.iter(|| {
            // Submit to followers first (no proposal), then the leader
            // batches everything.
            for _ in 0..100 {
                seq += 1;
                let request = Request::new(ClientId(1), seq, Bytes::from(vec![0u8; 256]));
                for i in 1..4 {
                    cluster.submit_to(i, request.clone());
                }
            }
            for s in (seq - 99)..=seq {
                cluster.submit_to(0, Request::new(ClientId(1), s, Bytes::from(vec![0u8; 256])));
            }
            cluster.run_to_quiescence();
        });
    });
}

fn bench_selection(c: &mut Criterion) {
    let (signing, verifying) = test_keys(4);
    let quorums = QuorumSystem::classic(4, 1).unwrap();
    let batch = hlf_consensus::messages::Batch::new(vec![Request::new(
        ClientId(1),
        1,
        Bytes::from(vec![0u8; 256]),
    )]);
    let hash = batch.digest();
    let cert: Vec<Vote> = (0..3)
        .map(|i| Vote::sign(&signing[i], VotePhase::Write, NodeId(i as u32), 5, 0, hash))
        .collect();
    let collect: Vec<StopData> = (0..3)
        .map(|i| {
            StopData::sign(
                &signing[i],
                NodeId(i as u32),
                1,
                5,
                Some((0, hash)),
                Some(batch.clone()),
                cert.clone(),
                None,
            )
        })
        .collect();
    c.bench_function("consensus/sync-select", |b| {
        b.iter(|| select(black_box(&collect), 1, &quorums, &verifying).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_instance, bench_batched_instance, bench_selection
}
criterion_main!(benches);
