//! Criterion micro-benchmarks for the crypto substrate: the primitives
//! whose cost drives the paper's Figure 6 and Equation (1).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hlf_crypto::ecdsa::SigningKey;
use hlf_crypto::sha256::{sha256, Hash256};
use hlf_fabric::block::Block;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let key = SigningKey::from_seed(b"bench-ecdsa");
    let digest = sha256(b"block header");
    c.bench_function("ecdsa/sign", |b| b.iter(|| key.sign_digest(black_box(&digest))));
    let signature = key.sign_digest(&digest);
    c.bench_function("ecdsa/verify", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify_digest(black_box(&digest), black_box(&signature))
                .unwrap()
        })
    });
}

fn bench_block_signing(c: &mut Criterion) {
    // The full ordering-node signing step: header hash + ECDSA, for the
    // paper's two block sizes.
    let key = SigningKey::from_seed(b"bench-block");
    for block_size in [10usize, 100] {
        let envelopes: Vec<Bytes> = (0..block_size)
            .map(|i| Bytes::from(vec![i as u8; 1024]))
            .collect();
        c.bench_function(&format!("block/sign-{block_size}env"), |b| {
            b.iter(|| {
                let mut block = Block::build(black_box(1), Hash256::ZERO, envelopes.clone());
                block.sign(0, &key);
                block
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_ecdsa, bench_block_signing
}
criterion_main!(benches);
