//! Criterion micro-benchmarks for the crypto substrate: the primitives
//! whose cost drives the paper's Figure 6 and Equation (1).
//!
//! The `*_reference` variants time the verified double-and-add baseline
//! paths kept in-tree, so the speedup of the comb / windowed-affine /
//! Strauss–Shamir fast paths can be measured on any machine (see
//! `BENCH_crypto.json` at the repository root and `make bench-crypto`).

use hlf_wire::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hlf_crypto::bignum::U256;
use hlf_crypto::ecdsa::SigningKey;
use hlf_crypto::p256::Point;
use hlf_crypto::sha256::{sha256, Hash256};
use hlf_fabric::block::Block;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    group.finish();
}

fn bench_p256(c: &mut Criterion) {
    let k = U256::from_hex("7a1b3c5d9e8f70615243342516070899aabbccddeeff00112233445566778899")
        .unwrap();
    let u1 = U256::from_hex("3344556677889900aabbccddeeff00117a1b3c5d9e8f7061524334251607a899")
        .unwrap();
    let q = Point::generator().mul_reference(&U256::from_u64(0xfab));
    Point::mul_base(&k); // build the comb table outside the timing loop

    c.bench_function("p256/mul_base", |b| {
        b.iter(|| Point::mul_base(black_box(&k)))
    });
    c.bench_function("p256/mul", |b| b.iter(|| q.mul(black_box(&k))));
    c.bench_function("p256/lincomb", |b| {
        b.iter(|| Point::lincomb(black_box(&u1), &q, black_box(&k)))
    });
    c.bench_function("p256/mul_reference", |b| {
        b.iter(|| q.mul_reference(black_box(&k)))
    });
}

fn bench_ecdsa(c: &mut Criterion) {
    let key = SigningKey::from_seed(b"bench-ecdsa");
    let digest = sha256(b"block header");
    c.bench_function("ecdsa/sign", |b| b.iter(|| key.sign_digest(black_box(&digest))));
    let signature = key.sign_digest(&digest);
    c.bench_function("ecdsa/verify", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify_digest(black_box(&digest), black_box(&signature))
                .unwrap()
        })
    });
    c.bench_function("ecdsa/sign_reference", |b| {
        b.iter(|| key.sign_digest_reference(black_box(&digest)))
    });
    c.bench_function("ecdsa/verify_reference", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify_digest_reference(black_box(&digest), black_box(&signature))
                .unwrap()
        })
    });
}

fn bench_block_signing(c: &mut Criterion) {
    // The full ordering-node signing step: header hash + ECDSA, for the
    // paper's two block sizes. The envelope clone is setup, not
    // workload — `iter_batched` keeps its allocation traffic out of the
    // measurement.
    let key = SigningKey::from_seed(b"bench-block");
    for block_size in [10usize, 100] {
        let envelopes: Vec<Bytes> = (0..block_size)
            .map(|i| Bytes::from(vec![i as u8; 1024]))
            .collect();
        c.bench_function(&format!("block/sign-{block_size}env"), |b| {
            b.iter_batched(
                || envelopes.clone(),
                |envelopes| {
                    let mut block = Block::build(black_box(1), Hash256::ZERO, envelopes);
                    block.sign(0, &key);
                    block
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_p256, bench_ecdsa, bench_block_signing
}
criterion_main!(benches);
