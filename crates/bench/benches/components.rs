//! Criterion benchmarks for the remaining hot components: blockcutter,
//! wire codec, envelope validation and the in-process transport.

use hlf_wire::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hlf_transport::{Network, PeerId};
use hlf_wire::{from_bytes, to_bytes};
use ordering_core::blockcutter::BlockCutter;
use std::hint::black_box;

fn bench_blockcutter(c: &mut Criterion) {
    let mut group = c.benchmark_group("blockcutter");
    group.throughput(Throughput::Elements(1000));
    for block_size in [10usize, 100] {
        group.bench_function(format!("push-1k-env-block{block_size}"), |b| {
            let envelope = Bytes::from(vec![0u8; 1024]);
            let mut cutter = BlockCutter::new(block_size, usize::MAX);
            b.iter(|| {
                for _ in 0..1000 {
                    if let Some(cut) = cutter.push(envelope.clone()) {
                        black_box(cut.len());
                    }
                }
            });
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for size in [40usize, 1024, 4096] {
        let block = hlf_fabric::block::Block::build(
            7,
            hlf_crypto::sha256::Hash256::ZERO,
            (0..10).map(|i| Bytes::from(vec![i as u8; size])).collect(),
        );
        let encoded = to_bytes(&block);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function(format!("block-encode-{size}B-env"), |b| {
            b.iter(|| to_bytes(black_box(&block)))
        });
        group.bench_function(format!("block-decode-{size}B-env"), |b| {
            b.iter(|| from_bytes::<hlf_fabric::block::Block>(black_box(&encoded)).unwrap())
        });
    }
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    c.bench_function("transport/send-recv-1KiB", |b| {
        let network = Network::new();
        let tx = network.join(PeerId::replica(0));
        let rx = network.join(PeerId::replica(1));
        let payload = Bytes::from(vec![0u8; 1024]);
        b.iter(|| {
            tx.send(PeerId::replica(1), payload.clone()).unwrap();
            black_box(rx.recv().unwrap());
        });
    });
}

fn bench_envelope_validation(c: &mut Criterion) {
    use hlf_crypto::ecdsa::SigningKey;
    use hlf_fabric::envelope::{Envelope, Proposal, ProposalResponse};
    use hlf_fabric::types::RwSet;

    let peer_keys: Vec<SigningKey> = (0..3)
        .map(|i| SigningKey::from_seed(format!("bench-peer-{i}").as_bytes()))
        .collect();
    let endorser_keys: Vec<_> = peer_keys.iter().map(|k| *k.verifying_key()).collect();
    let client_key = SigningKey::from_seed(b"bench-client");
    let proposal = Proposal {
        channel: "ch".into(),
        chaincode: "kv".into(),
        client: 1,
        nonce: 1,
        args: vec![Bytes::from_static(b"put"), Bytes::from_static(b"k")],
    };
    let tx_id = proposal.tx_id();
    let responses: Vec<ProposalResponse> = (0..3)
        .map(|i| {
            ProposalResponse::sign(
                i as u32,
                &peer_keys[i],
                &tx_id,
                RwSet::default(),
                Bytes::from_static(b"ok"),
            )
        })
        .collect();
    let envelope = Envelope::assemble(proposal, responses, &client_key).unwrap();

    c.bench_function("fabric/validate-3-endorsements", |b| {
        b.iter(|| black_box(envelope.valid_endorsements(&endorser_keys)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_blockcutter, bench_wire_codec, bench_transport, bench_envelope_validation
}
criterion_main!(benches);
