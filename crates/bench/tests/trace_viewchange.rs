//! Regression test for trace attribution across a view change: with the
//! consensus window pipelined (k = 4), crash the regency-0 leader
//! mid-run, let the cluster elect a new leader, and check that the
//! merged per-transaction timelines still telescope *exactly* —
//! the five phase deltas (relay, write, accept, sign, collect) sum to
//! deliver − submit for every completed transaction, including the ones
//! whose slots were re-proposed by (or first proposed under) the new
//! leader. This is what the generalized `bench::trace::merge_timelines`
//! buys over the old leader-0-only merge, which silently drops or
//! mis-attributes everything ordered after the regency change.

use bench::trace::merge_timelines;
use hlf_obs::flight::EventKind;
use hlf_simnet::SimTime;
use ordering_core::sim::{run_geo_experiment, GeoConfig, Protocol};

const CRASH_AT_S: u64 = 4;
const REQUEST_TIMEOUT_MS: u64 = 2_000;

#[test]
fn pipelined_timelines_telescope_exactly_across_a_view_change() {
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_trace()
        .with_pipeline_depth(4)
        .with_request_timeout_ms(REQUEST_TIMEOUT_MS)
        .with_crash_replica(0, SimTime::from_secs(CRASH_AT_S));
    config.duration = SimTime::from_secs(20);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;

    let result = run_geo_experiment(&config);
    let dumps = result.flights.as_deref().expect("trace requested");

    // The crash must actually have forced a regency change.
    let regency_changes = dumps
        .iter()
        .flat_map(|d| &d.events)
        .filter(|e| e.kind == EventKind::RegencyChange && e.a >= 1)
        .count();
    assert!(
        regency_changes > 0,
        "leader crash did not trigger a view change"
    );

    let timelines = merge_timelines(dumps);
    assert!(
        timelines.len() > 500,
        "too few complete timelines: {}",
        timelines.len()
    );

    // Transactions ordered by the post-view-change leader must be
    // present and attributed to it — not dropped, not pinned to the
    // dead node 0.
    let crash_us = CRASH_AT_S * 1_000_000;
    let after_change: Vec<_> = timelines.iter().filter(|t| t.regency >= 1).collect();
    assert!(
        !after_change.is_empty(),
        "no timeline was attributed to a regency >= 1 leader"
    );
    for t in &after_change {
        assert_ne!(t.leader, 0, "regency {} mapped to the crashed leader", t.regency);
        assert!(
            t.deliver_us > crash_us,
            "trace {:#x}: regency-{} decision delivered before the crash",
            t.trace,
            t.regency
        );
    }
    // The run keeps ordering long after the crash, so the new leader
    // should account for a healthy share of the traffic.
    assert!(
        after_change.len() > 100,
        "only {} timelines attributed past the view change",
        after_change.len()
    );

    // The acceptance bar: phase deltas telescope exactly for every
    // transaction, before and after the regency change.
    for t in &timelines {
        let sum: u64 = t.phases.iter().sum();
        let e2e = t.deliver_us - t.submit_us;
        assert_eq!(
            sum,
            e2e,
            "trace {:#x} (cid {}, regency {}, leader {}): phases {:?} sum to {} but e2e is {}",
            t.trace,
            t.cid,
            t.regency,
            t.leader,
            t.phases,
            sum,
            e2e
        );
    }
}

#[test]
fn merge_matches_leader_zero_attribution_on_a_healthy_run() {
    // On a crash-free run every decision happens at regency 0, so the
    // generalized merge must attribute everything to node 0 and
    // telescope exactly — i.e. it is a strict superset of the old
    // hardcoded merge.
    let mut config = GeoConfig::new(Protocol::BftSmart)
        .with_trace()
        .with_pipeline_depth(2);
    config.duration = SimTime::from_secs(8);
    config.warmup = SimTime::from_secs(2);
    config.rate_per_frontend = 100.0;

    let result = run_geo_experiment(&config);
    let dumps = result.flights.as_deref().expect("trace requested");
    let timelines = merge_timelines(dumps);
    assert!(
        timelines.len() > 300,
        "too few complete timelines: {}",
        timelines.len()
    );
    for t in &timelines {
        assert_eq!(t.regency, 0);
        assert_eq!(t.leader, 0);
        let sum: u64 = t.phases.iter().sum();
        assert_eq!(sum, t.deliver_us - t.submit_us, "trace {:#x}", t.trace);
    }
}
