//! Wire codec for [`TraceContext`]: a *trailing optional* field.
//!
//! Trace contexts ride at the end of a top-level frame, after the
//! message they annotate, in a form chosen so that tracing never
//! perturbs the canonical encoding:
//!
//! - **Absent** encodes to **zero bytes** — a traceless frame is
//!   byte-identical to the pre-trace wire format, so signatures,
//!   digests, and old decoders are all unaffected.
//! - **Present** appends a marker byte `0x54` (`'T'`) followed by the
//!   trace id and origin timestamp (17 bytes total).
//!
//! Decoding peeks at the reader: nothing left → no trace; the marker →
//! consume the context; anything else is an error (the frame had real
//! trailing garbage). A peer built before this change rejects *traced*
//! frames with [`WireError::TrailingBytes`] — which is why senders only
//! attach contexts when tracing is explicitly enabled (`HLF_TRACE`),
//! and why mixed-version clusters run traceless by default.

use crate::{Decode, Encode, Reader, WireError};
use hlf_obs::TraceContext;

/// Marker byte introducing a trailing trace context (`'T'`).
pub const TRACE_MARKER: u8 = 0x54;

/// Encoded size of a present trailing context (marker + id + origin).
pub const TRACE_WIRE_LEN: usize = 1 + 8 + 8;

impl Encode for TraceContext {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.origin_us.encode(out);
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for TraceContext {
    fn decode(r: &mut Reader<'_>) -> Result<TraceContext, WireError> {
        Ok(TraceContext {
            id: u64::decode(r)?,
            origin_us: u64::decode(r)?,
        })
    }
}

/// Appends a trailing trace context: nothing for `None`, marker +
/// context for `Some` (see the module docs).
pub fn encode_trailing_trace(trace: &Option<TraceContext>, out: &mut Vec<u8>) {
    if let Some(ctx) = trace {
        out.push(TRACE_MARKER);
        ctx.encode(out);
    }
}

/// Exact encoded length of a trailing trace context.
pub fn trailing_trace_len(trace: &Option<TraceContext>) -> usize {
    if trace.is_some() {
        TRACE_WIRE_LEN
    } else {
        0
    }
}

/// Decodes a trailing trace context: an exhausted reader means `None`,
/// otherwise the marker byte and context must be exactly what remains.
///
/// # Errors
///
/// Returns [`WireError::InvalidDiscriminant`] if the next byte is not
/// the trace marker, or [`WireError::UnexpectedEof`] if the context is
/// truncated.
pub fn decode_trailing_trace(r: &mut Reader<'_>) -> Result<Option<TraceContext>, WireError> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let marker = r.take(1)?[0];
    if marker != TRACE_MARKER {
        return Err(WireError::InvalidDiscriminant(marker));
    }
    Ok(Some(TraceContext::decode(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn context_roundtrips() {
        let ctx = TraceContext::new(0x1234_5678_9abc_def0, 42_000_000);
        let bytes = to_bytes(&ctx);
        assert_eq!(bytes.len(), 16);
        assert_eq!(from_bytes::<TraceContext>(&bytes).unwrap(), ctx);
    }

    #[test]
    fn absent_trace_encodes_to_nothing() {
        let mut out = vec![1, 2, 3];
        encode_trailing_trace(&None, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(trailing_trace_len(&None), 0);
    }

    #[test]
    fn present_trace_roundtrips_after_payload() {
        let ctx = TraceContext::new(7, 99);
        let mut out = vec![0xAA, 0xBB];
        encode_trailing_trace(&Some(ctx), &mut out);
        assert_eq!(out.len(), 2 + TRACE_WIRE_LEN);
        assert_eq!(trailing_trace_len(&Some(ctx)), TRACE_WIRE_LEN);

        let mut r = Reader::new(&out);
        r.take(2).unwrap();
        assert_eq!(decode_trailing_trace(&mut r).unwrap(), Some(ctx));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_tail_decodes_as_none() {
        let mut r = Reader::new(&[]);
        assert_eq!(decode_trailing_trace(&mut r).unwrap(), None);
    }

    #[test]
    fn wrong_marker_is_rejected() {
        let bytes = [0x55u8; TRACE_WIRE_LEN];
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_trailing_trace(&mut r),
            Err(WireError::InvalidDiscriminant(0x55))
        );
    }

    #[test]
    fn truncated_context_is_rejected() {
        let ctx = TraceContext::new(1, 2);
        let mut out = Vec::new();
        encode_trailing_trace(&Some(ctx), &mut out);
        for cut in 1..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert!(decode_trailing_trace(&mut r).is_err(), "cut at {cut}");
        }
    }
}
