//! Canonical, deterministic binary wire format for hlf-bft.
//!
//! Every protocol message in the workspace — consensus messages, SMR
//! client requests, Fabric envelopes and blocks — is serialized through
//! the [`Encode`]/[`Decode`] traits defined here. The format is
//! deliberately boring:
//!
//! * fixed-width little-endian integers,
//! * `u32` length prefixes for variable-length data,
//! * no padding, no versioned self-description.
//!
//! Determinism matters twice over in a BFT system: replicas must compute
//! identical hashes over identical logical values, and signatures must
//! cover a canonical byte string.
//!
//! # Examples
//!
//! ```
//! use hlf_wire::{from_bytes, to_bytes, Decode, Encode, Reader, WireError};
//!
//! #[derive(Debug, PartialEq)]
//! struct Ping { seq: u64, payload: Vec<u8> }
//!
//! impl Encode for Ping {
//!     fn encode(&self, out: &mut Vec<u8>) {
//!         self.seq.encode(out);
//!         self.payload.encode(out);
//!     }
//! }
//!
//! impl Decode for Ping {
//!     fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
//!         Ok(Ping { seq: Decode::decode(r)?, payload: Decode::decode(r)? })
//!     }
//! }
//!
//! # fn main() -> Result<(), WireError> {
//! let ping = Ping { seq: 7, payload: vec![1, 2, 3] };
//! let bytes = to_bytes(&ping);
//! assert_eq!(from_bytes::<Ping>(&bytes)?, ping);
//! # Ok(())
//! # }
//! ```

pub mod bytes;
pub mod ids;
pub mod trace;

pub use bytes::{BufferPool, Bytes, PoolStats};
pub use ids::{ClientId, NodeId};
pub use trace::{
    decode_trailing_trace, encode_trailing_trace, trailing_trace_len, TRACE_MARKER,
    TRACE_WIRE_LEN,
};

use hlf_crypto::ecdsa::Signature;
use hlf_crypto::sha256::Hash256;
use std::error::Error;
use std::fmt;

/// Maximum length prefix the decoder will accept, as a defence against
/// allocation bombs from Byzantine peers (16 MiB).
pub const MAX_LEN: u32 = 16 * 1024 * 1024;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A length prefix exceeded [`MAX_LEN`].
    LengthOverflow(u32),
    /// An enum discriminant or flag byte had no defined meaning.
    InvalidDiscriminant(u8),
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes(usize),
    /// A structurally valid encoding carried a semantically invalid value
    /// (for example an out-of-range signature scalar).
    InvalidValue(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => f.write_str("unexpected end of input"),
            WireError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds limit"),
            WireError::InvalidDiscriminant(d) => write!(f, "invalid discriminant {d}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::InvalidValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl Error for WireError {}

/// A cursor over an input buffer being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    /// When decoding out of a shared buffer, the buffer itself, so that
    /// byte-string fields can be taken as zero-copy views of it.
    /// Invariant: `input == backing.as_slice()`.
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Reader<'a> {
        Reader { input, pos: 0, backing: None }
    }

    /// Creates a reader over a shared buffer. Byte-string fields decode
    /// as zero-copy views ([`Bytes::slice`]) of `bytes` instead of
    /// fresh allocations.
    pub fn for_shared(bytes: &'a Bytes) -> Reader<'a> {
        Reader { input: bytes.as_slice(), pos: 0, backing: Some(bytes) }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// A zero-copy view of `input[start..end]`, available when the
    /// reader was built with [`Reader::for_shared`]. Lets composite
    /// decoders adopt the canonical bytes they just consumed as an
    /// encode-once cache.
    pub fn shared_view(&self, start: usize, end: usize) -> Option<Bytes> {
        self.backing.map(|b| b.slice(start..end))
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let out = &self.input[self.pos..self.pos + n]; // lint:allow(panic): guarded by the `remaining() < n` check above
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes")) // lint:allow(panic): `take(N)` returns exactly `N` bytes on success
    }

    /// Takes `n` bytes as a [`Bytes`] value: a zero-copy view when the
    /// reader was built with [`Reader::for_shared`], a copy otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take_view(&mut self, n: usize) -> Result<Bytes, WireError> {
        match self.backing {
            Some(backing) => {
                if self.remaining() < n {
                    return Err(WireError::UnexpectedEof);
                }
                let view = backing.slice(self.pos..self.pos + n);
                self.pos += n;
                Ok(view)
            }
            None => Ok(Bytes::copy_from_slice(self.take(n)?)),
        }
    }
}

/// Serializes a value into a canonical byte string.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Exact length in bytes of [`Encode::encode`]'s output, so callers
    /// can preallocate once.
    ///
    /// The default does a scratch encode; implementations should
    /// override it with an O(1) (or at worst single-pass) computation.
    fn encoded_len(&self) -> usize {
        let mut scratch = Vec::new();
        self.encode(&mut scratch);
        scratch.len()
    }
}

/// Deserializes a value from its canonical byte string.
pub trait Decode: Sized {
    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value to a fresh buffer, preallocated to the exact size in
/// one shot via [`Encode::encoded_len`].
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let expected = value.encoded_len();
    let mut out = Vec::with_capacity(expected);
    value.encode(&mut out);
    debug_assert_eq!(out.len(), expected, "encoded_len disagrees with encode output");
    out
}

/// Encodes a value into a pool-recycled buffer (see [`BufferPool`]).
///
/// The returned [`Bytes`] gives the buffer back to `pool` when its last
/// clone drops, so steady-state encode paths stop allocating.
pub fn to_pooled_bytes<T: Encode + ?Sized>(value: &T, pool: &BufferPool) -> Bytes {
    let mut out = pool.take(value.encoded_len());
    value.encode(&mut out);
    pool.wrap(out)
}

/// Decodes exactly one value, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed or over-long input.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Decodes exactly one value out of a shared buffer, rejecting trailing
/// bytes. Byte-string fields inside the value are zero-copy views of
/// `bytes` rather than fresh allocations (see [`Reader::for_shared`]).
///
/// # Errors
///
/// Returns a [`WireError`] on malformed or over-long input.
pub fn from_bytes_shared<T: Decode>(bytes: &Bytes) -> Result<T, WireError> {
    let mut r = Reader::for_shared(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }

                fn encoded_len(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }
            }
            impl Decode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                    Ok(<$ty>::from_le_bytes(r.take_array()?))
                }
            }
        )*
    };
}

impl_int!(u8, u16, u32, u64, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::InvalidValue("usize overflow"))
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    let len = u32::try_from(len).expect("value length fits in u32"); // lint:allow(panic): the wire format caps every value at u32 length; encoding more is a caller bug
    len.encode(out);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = u32::decode(r)?;
    if len > MAX_LEN {
        return Err(WireError::LengthOverflow(len));
    }
    Ok(len as usize)
}

// lint:allow(codec): `[u8]` is unsized, so it cannot implement
// `Decode`; the decode direction lives on `Vec<u8>` and `Bytes`.
impl Encode for [u8] {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self);
    }

    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }

    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        Ok(r.take(len)?.to_vec())
    }
}

impl Encode for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }

    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Bytes {
    /// Decodes a length-prefixed byte string. Zero-copy (a shared view
    /// of the input buffer) when decoding via [`Reader::for_shared`].
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(r)?;
        r.take_view(len)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }

    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::decode(r)?;
        String::from_utf8(bytes).map_err(|_| WireError::InvalidValue("non-UTF-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            None => 1,
            Some(v) => 1 + v.encoded_len(),
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            d => Err(WireError::InvalidDiscriminant(d)),
        }
    }
}

/// Encodes a slice of encodable values with a length prefix.
///
/// `Vec<u8>` has a specialized byte-string encoding; use this for all
/// other element types.
pub fn encode_seq<T: Encode>(items: &[T], out: &mut Vec<u8>) {
    encode_len(items.len(), out);
    for item in items {
        item.encode(out);
    }
}

/// Exact length of [`encode_seq`]'s output for `items`.
pub fn seq_encoded_len<T: Encode>(items: &[T]) -> usize {
    4 + items.iter().map(Encode::encoded_len).sum::<usize>()
}

/// Splices an already-canonical encoding into an output buffer.
///
/// This is the scatter-gather escape hatch for composite encoders: when
/// a field's canonical bytes are already at hand (e.g. memoized by an
/// encode-once cache), append them verbatim instead of re-serializing
/// the structured value. The caller asserts `canonical` is exactly what
/// the field's `encode` would have produced.
pub fn splice_canonical(canonical: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(canonical);
}

/// Decodes a length-prefixed sequence written by [`encode_seq`].
///
/// # Errors
///
/// Propagates element decode errors; rejects element counts that exceed
/// the remaining input (each element encodes to at least one byte).
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let len = decode_len(r)?;
    if len > r.remaining() {
        return Err(WireError::UnexpectedEof);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Hash256 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for Hash256 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Hash256(r.take_array()?))
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes());
    }

    fn encoded_len(&self) -> usize {
        64
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes: [u8; 64] = r.take_array()?;
        Signature::from_bytes(&bytes).ok_or(WireError::InvalidValue("signature out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlf_crypto::ecdsa::SigningKey;
    use hlf_crypto::sha256::sha256;

    #[test]
    fn int_roundtrips() {
        assert_eq!(from_bytes::<u8>(&to_bytes(&0xabu8)).unwrap(), 0xab);
        assert_eq!(from_bytes::<u16>(&to_bytes(&0xbeefu16)).unwrap(), 0xbeef);
        assert_eq!(from_bytes::<u32>(&to_bytes(&7u32)).unwrap(), 7);
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_bytes::<i64>(&to_bytes(&-42i64)).unwrap(), -42);
        assert_eq!(from_bytes::<usize>(&to_bytes(&99usize)).unwrap(), 99);
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(from_bytes::<bool>(&[1]).unwrap());
        assert!(!from_bytes::<bool>(&[0]).unwrap());
        assert_eq!(
            from_bytes::<bool>(&[2]),
            Err(WireError::InvalidDiscriminant(2))
        );
    }

    #[test]
    fn byte_vec_roundtrip_and_limits() {
        let v = vec![1u8, 2, 3];
        assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&v)).unwrap(), v);
        // A length prefix beyond MAX_LEN is rejected before allocating.
        let mut evil = Vec::new();
        (MAX_LEN + 1).encode(&mut evil);
        assert_eq!(
            from_bytes::<Vec<u8>>(&evil),
            Err(WireError::LengthOverflow(MAX_LEN + 1))
        );
        // A truthful-looking prefix with missing payload is EOF.
        let mut truncated = Vec::new();
        8u32.encode(&mut truncated);
        truncated.extend_from_slice(&[1, 2, 3]);
        assert_eq!(from_bytes::<Vec<u8>>(&truncated), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn string_utf8_enforced() {
        let s = "consensus".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        let mut bad = Vec::new();
        vec![0xffu8, 0xfe].encode(&mut bad);
        assert_eq!(
            from_bytes::<String>(&bad),
            Err(WireError::InvalidValue("non-UTF-8 string"))
        );
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(
            from_bytes::<Option<u64>>(&to_bytes(&Some(9u64))).unwrap(),
            Some(9)
        );
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&None::<u64>)).unwrap(), None);
        assert_eq!(
            from_bytes::<Option<u64>>(&[7]),
            Err(WireError::InvalidDiscriminant(7))
        );
    }

    #[test]
    fn seq_roundtrip_and_count_bomb() {
        let items = vec![10u64, 20, 30];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        let mut r = Reader::new(&out);
        assert_eq!(decode_seq::<u64>(&mut r).unwrap(), items);
        assert_eq!(r.remaining(), 0);

        // A count prefix that promises more elements than bytes remain
        // must fail fast rather than attempt a huge reservation.
        let mut bomb = Vec::new();
        1_000_000u32.encode(&mut bomb);
        let mut r = Reader::new(&bomb);
        assert_eq!(decode_seq::<u64>(&mut r), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32);
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hash_and_signature_roundtrip() {
        let h = sha256(b"wire");
        assert_eq!(from_bytes::<Hash256>(&to_bytes(&h)).unwrap(), h);

        let key = SigningKey::from_seed(b"wire");
        let sig = key.sign(b"msg");
        assert_eq!(from_bytes::<Signature>(&to_bytes(&sig)).unwrap(), sig);
        assert_eq!(
            from_bytes::<Signature>(&[0u8; 64]),
            Err(WireError::InvalidValue("signature out of range"))
        );
    }

    #[test]
    fn tuple_and_bytes_type() {
        let pair = (7u64, Bytes::from_static(b"abc"));
        let encoded = to_bytes(&pair);
        let decoded: (u64, Bytes) = from_bytes(&encoded).unwrap();
        assert_eq!(decoded, pair);
    }

    #[test]
    fn shared_decode_is_zero_copy() {
        let pair = (7u64, Bytes::from_static(b"payload bytes"));
        let encoded = Bytes::from(to_bytes(&pair));
        let decoded: (u64, Bytes) = from_bytes_shared(&encoded).unwrap();
        assert_eq!(decoded, pair);
        // The decoded payload is a view of the input buffer, not a copy.
        assert!(decoded.1.shares_storage_with(&encoded.slice(12..12 + 13)));
    }

    #[test]
    fn shared_decode_rejects_truncation_and_bombs() {
        // Truncated payload inside a shared buffer is EOF, not a panic.
        let mut truncated = Vec::new();
        8u32.encode(&mut truncated);
        truncated.extend_from_slice(&[1, 2, 3]);
        let shared = Bytes::from(truncated);
        assert_eq!(from_bytes_shared::<Bytes>(&shared), Err(WireError::UnexpectedEof));

        // A MAX_LEN-busting prefix is rejected before any view is taken.
        let mut evil = Vec::new();
        (MAX_LEN + 1).encode(&mut evil);
        let shared = Bytes::from(evil);
        assert_eq!(
            from_bytes_shared::<Bytes>(&shared),
            Err(WireError::LengthOverflow(MAX_LEN + 1))
        );
    }

    #[test]
    fn encoded_len_matches_encode_for_builtins() {
        assert_eq!((&7u8).encoded_len(), to_bytes(&7u8).len());
        assert_eq!((&7u64).encoded_len(), to_bytes(&7u64).len());
        assert_eq!(true.encoded_len(), 1);
        let v = vec![1u8, 2, 3];
        assert_eq!(v.encoded_len(), to_bytes(&v).len());
        let s = "channel".to_string();
        assert_eq!(s.encoded_len(), to_bytes(&s).len());
        let opt = Some(9u64);
        assert_eq!(opt.encoded_len(), to_bytes(&opt).len());
        let b = Bytes::from_static(b"xyz");
        assert_eq!(b.encoded_len(), to_bytes(&b).len());
        let items = vec![1u64, 2, 3];
        let mut out = Vec::new();
        encode_seq(&items, &mut out);
        assert_eq!(seq_encoded_len(&items), out.len());
    }

    #[test]
    fn pooled_encode_recycles_buffers() {
        let pool = BufferPool::new(8, 1 << 20);
        let value = (42u64, Bytes::from_static(b"pooled"));
        let first = to_pooled_bytes(&value, &pool);
        assert_eq!(from_bytes_shared::<(u64, Bytes)>(&first).unwrap(), value);
        drop(first);
        assert_eq!(pool.idle(), 1);
        let _second = to_pooled_bytes(&value, &pool);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn error_display_is_meaningful() {
        assert_eq!(WireError::UnexpectedEof.to_string(), "unexpected end of input");
        assert!(WireError::LengthOverflow(9).to_string().contains('9'));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
                prop_assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&v)).unwrap(), v);
            }

            #[test]
            fn arbitrary_u64_seq_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..256)) {
                let mut out = Vec::new();
                encode_seq(&v, &mut out);
                let mut r = Reader::new(&out);
                prop_assert_eq!(decode_seq::<u64>(&mut r).unwrap(), v);
                prop_assert_eq!(r.remaining(), 0);
            }

            #[test]
            fn decoder_never_panics_on_garbage(v in proptest::collection::vec(any::<u8>(), 0..512)) {
                // Whatever the bytes, decoding returns Ok or Err, never panics.
                let _ = from_bytes::<Vec<u8>>(&v);
                let _ = from_bytes::<String>(&v);
                let _ = from_bytes::<Option<u64>>(&v);
                let _ = from_bytes::<Hash256>(&v);
                let _ = from_bytes::<Signature>(&v);
            }

            #[test]
            fn encoding_is_injective_for_pairs(a in any::<u64>(), b in any::<u64>(),
                                               c in any::<u64>(), d in any::<u64>()) {
                let ab = to_bytes(&(a, b));
                let cd = to_bytes(&(c, d));
                prop_assert_eq!(ab == cd, (a, b) == (c, d));
            }

            #[test]
            fn bytes_view_roundtrip_at_arbitrary_offsets(
                prefix in proptest::collection::vec(any::<u8>(), 0..64),
                payload in proptest::collection::vec(any::<u8>(), 0..1024),
                suffix in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                // Embed an encoded value at an arbitrary offset of a larger
                // shared buffer and decode out of a sliced view of it.
                let mut full = prefix.clone();
                full.extend_from_slice(&to_bytes(&payload));
                full.extend_from_slice(&suffix);
                let shared = Bytes::from(full);
                let view = shared.slice(prefix.len()..shared.len() - suffix.len());
                let decoded = from_bytes_shared::<Bytes>(&view).unwrap();
                prop_assert_eq!(decoded.as_slice(), payload.as_slice());
                // Zero-copy: non-empty payloads share the outer buffer.
                if !payload.is_empty() {
                    let expect_off = prefix.len() + 4;
                    prop_assert!(decoded
                        .shares_storage_with(&shared.slice(expect_off..expect_off + payload.len())));
                }
            }

            #[test]
            fn arbitrary_splits_view_the_same_bytes(
                data in proptest::collection::vec(any::<u8>(), 1..512),
                a_raw in any::<u16>(),
                b_raw in any::<u16>(),
            ) {
                let shared = Bytes::from(data.clone());
                let (mut a, mut b) = (a_raw as usize % data.len(), b_raw as usize % data.len());
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                prop_assert_eq!(shared.slice(a..b).as_slice(), &data[a..b]);
                // Re-slicing a view composes offsets correctly.
                let outer = shared.slice(a..);
                prop_assert_eq!(outer.slice(..b - a).as_slice(), &data[a..b]);
            }

            #[test]
            fn truncated_views_are_rejected_not_panicked(
                payload in proptest::collection::vec(any::<u8>(), 0..512),
                cut_raw in any::<u16>(),
            ) {
                let encoded = to_bytes(&payload);
                let shared = Bytes::from(encoded);
                let cut = cut_raw as usize % shared.len();
                let truncated = shared.slice(..cut);
                prop_assert!(from_bytes_shared::<Bytes>(&truncated).is_err());
            }

            #[test]
            fn length_bombs_rejected_on_sliced_buffers(
                prefix in proptest::collection::vec(any::<u8>(), 0..32),
                excess in any::<u32>(),
            ) {
                // A length prefix beyond MAX_LEN inside a sliced shared
                // buffer is rejected before allocating or taking a view.
                let bomb_len = MAX_LEN.saturating_add(excess.max(1));
                let mut full = prefix.clone();
                bomb_len.encode(&mut full);
                let shared = Bytes::from(full);
                let view = shared.slice(prefix.len()..);
                prop_assert_eq!(
                    from_bytes_shared::<Bytes>(&view),
                    Err(WireError::LengthOverflow(bomb_len))
                );
            }
        }
    }
}
