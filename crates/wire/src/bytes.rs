//! Cheap-clone, slice-able shared byte buffers and a recycling buffer
//! pool — the zero-copy substrate for the whole message path.
//!
//! [`Bytes`] is an immutable view into either a `'static` slice or an
//! `Arc`-shared heap buffer. Cloning and slicing are O(1): they bump a
//! reference count and adjust an `(offset, len)` window, never copying
//! payload bytes. This lets one receive buffer back every payload view
//! taken from it (an envelope inside a block inside a transport frame)
//! without re-allocation at each protocol layer.
//!
//! [`BufferPool`] is a free-list of `Vec<u8>` buffers. A pool-tagged
//! [`Bytes`] returns its backing vector to the pool when the last clone
//! drops, so steady-state send paths reuse a small working set of
//! buffers instead of hitting the global allocator per message.
//!
//! # Ownership rules
//!
//! * `Bytes` is a *view*: the backing allocation lives until the last
//!   view over it drops. Holding a tiny slice of a huge buffer pins the
//!   whole buffer — copy out (`copy_from_slice`) when retaining a small
//!   fragment of a large transient frame for a long time.
//! * Pool recycling is automatic and safe: the buffer re-enters the
//!   free list only after every view has dropped, and is cleared before
//!   reuse. Dropping the pool first simply releases buffers to the
//!   allocator.
//!
//! # Examples
//!
//! ```
//! use hlf_wire::Bytes;
//!
//! let frame = Bytes::from(vec![0u8; 64]);
//! let payload = frame.slice(32..48); // O(1), shares the allocation
//! let copy = payload.clone();        // O(1)
//! assert_eq!(payload.len(), 16);
//! assert_eq!(payload, copy);
//! ```

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, cheaply cloneable and sliceable view of contiguous
/// bytes.
///
/// See the [module docs](self) for the ownership rules.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage; clone/slice are pointer copies.
    Static(&'static [u8]),
    /// Shared heap buffer, possibly owned by a [`BufferPool`].
    Shared(Arc<Shared>),
}

struct Shared {
    buf: Vec<u8>,
    /// Pool to return `buf` to when the last view drops.
    pool: Option<Arc<PoolInner>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(bytes), off: 0, len: bytes.len() }
    }

    /// Copies `bytes` into a fresh shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes as a slice.
    // lint:allow(panic): `off + len` was bounds-checked against the backing buffer at construction
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.off..self.off + self.len],
            Repr::Shared(s) => &s.buf[self.off..self.off + self.len],
        }
    }

    /// Returns a sub-view of `self` without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds of this view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            begin <= end && end <= self.len,
            "slice {begin}..{end} out of bounds of {} bytes",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + begin,
            len: end - begin,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True if `self` and `other` are views of the same backing buffer
    /// at the same offset (i.e. sharing, not merely equal content).
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        self.off == other.off
            && match (&self.repr, &other.repr) {
                (Repr::Static(a), Repr::Static(b)) => std::ptr::eq(*a, *b),
                (Repr::Shared(a), Repr::Shared(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Bytes {
        let len = buf.len();
        Bytes {
            repr: Repr::Shared(Arc::new(Shared { buf, pool: None })),
            off: 0,
            len,
        }
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from(v.into_vec())
    }
}
impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}
impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}
impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Counters describing pool effectiveness; all values are cumulative.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls satisfied from the free list.
    pub hits: u64,
    /// `take` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list by dropped views.
    pub recycled: u64,
    /// Buffers released to the allocator because the free list was full.
    pub shed: u64,
}

struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    /// Free-list capacity; buffers past this are dropped (shed).
    max_idle: usize,
    /// Buffers larger than this are never retained, so one jumbo frame
    /// cannot permanently inflate the pool's resident size.
    max_buffer_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    shed: AtomicU64,
}

impl PoolInner {
    fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_buffer_capacity {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("pool lock"); // lint:allow(panic): the pool mutex is held only for push/pop, never across a panic site
        if free.len() < self.max_idle {
            free.push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A free-list of reusable `Vec<u8>` buffers.
///
/// Cloning a pool is cheap and shares the free list. See the
/// [module docs](self) for sizing guidance.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("idle", &self.idle())
            .field("stats", &stats)
            .finish()
    }
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        // Enough idle buffers to cover a broadcast fan-out per node
        // (n ≤ 16 links in the paper's clusters) with headroom, capped
        // at 1 MiB per retained buffer.
        BufferPool::new(64, 1 << 20)
    }
}

impl BufferPool {
    /// Creates a pool retaining at most `max_idle` free buffers, none
    /// larger than `max_buffer_capacity` bytes.
    pub fn new(max_idle: usize, max_buffer_capacity: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                max_idle,
                max_buffer_capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            }),
        }
    }

    /// Takes a cleared buffer with at least `capacity` bytes reserved,
    /// reusing a recycled one when available.
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        let reused = self.inner.free.lock().expect("pool lock").pop(); // lint:allow(panic): the pool mutex is held only for push/pop, never across a panic site
        match reused {
            Some(mut buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf.reserve(capacity);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Wraps a buffer in a [`Bytes`] that returns the buffer to this
    /// pool when the last view of it drops.
    pub fn wrap(&self, buf: Vec<u8>) -> Bytes {
        let len = buf.len();
        Bytes {
            repr: Repr::Shared(Arc::new(Shared {
                buf,
                pool: Some(Arc::clone(&self.inner)),
            })),
            off: 0,
            len,
        }
    }

    /// Number of buffers currently idle in the free list.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().expect("pool lock").len() // lint:allow(panic): the pool mutex is held only for push/pop, never across a panic site
    }

    /// Cumulative pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_bytes_share_without_copying() {
        let a = Bytes::from_static(b"hello world");
        let b = a.slice(6..);
        assert_eq!(b, *b"world");
        assert_eq!(a.slice(..5), *b"hello");
        let c = a.clone();
        assert!(c.shares_storage_with(&a));
    }

    #[test]
    fn slices_share_the_backing_allocation() {
        let frame = Bytes::from(vec![7u8; 100]);
        let view = frame.slice(10..20);
        assert_eq!(view.len(), 10);
        let nested = view.slice(2..4);
        assert_eq!(nested.len(), 2);
        assert_eq!(nested, [7u8, 7]);
        // A view of a view at offset zero of the same range shares.
        assert!(frame.slice(10..20).shares_storage_with(&view));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(1..5);
    }

    #[test]
    fn equality_is_content_based() {
        let a = Bytes::from(b"same".to_vec());
        let b = Bytes::from_static(b"same");
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn pool_recycles_after_last_view_drops() {
        let pool = BufferPool::new(4, 1 << 20);
        let buf = pool.take(128);
        assert!(buf.capacity() >= 128);
        let bytes = pool.wrap(buf);
        let view = bytes.slice(..);
        drop(bytes);
        assert_eq!(pool.idle(), 0, "live view must pin the buffer");
        drop(view);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().recycled, 1);

        // The next take reuses the recycled buffer.
        let again = pool.take(16);
        assert_eq!(pool.stats().hits, 1);
        assert!(again.is_empty(), "recycled buffers are cleared");
    }

    #[test]
    fn pool_sheds_when_full_or_oversized() {
        let pool = BufferPool::new(1, 64);
        let a = pool.wrap(pool.take(16));
        let b = pool.wrap(pool.take(16));
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().shed, 1);

        // A jumbo buffer is never retained.
        drop(pool.wrap(Vec::with_capacity(1024)));
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().shed, 2);
    }

    #[test]
    fn pool_survives_outliving_views() {
        let pool = BufferPool::new(4, 1 << 20);
        let bytes = pool.wrap(pool.take(8));
        drop(pool);
        drop(bytes); // recycles into the still-alive shared inner; no panic
    }
}
