//! Process identities shared across the workspace.

use crate::{Decode, Encode, Reader, WireError};
use std::fmt;

/// Identity of a replica (ordering node) in the BFT cluster.
///
/// # Examples
///
/// ```
/// use hlf_wire::ids::NodeId;
///
/// let n = NodeId(3);
/// assert_eq!(format!("{n}"), "node-3");
/// assert_eq!(n.as_usize(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    pub fn as_usize(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl Encode for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(u32::decode(r)?))
    }
}

/// Identity of an SMR client (in the ordering service: a frontend).
///
/// Client ids live in a separate namespace from node ids; the paper's
/// frontends are BFT-SMaRt clients.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The id as an array index.
    pub fn as_usize(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

impl Encode for ClientId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for ClientId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ClientId(u32::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn ids_roundtrip() {
        assert_eq!(from_bytes::<NodeId>(&to_bytes(&NodeId(7))).unwrap(), NodeId(7));
        assert_eq!(
            from_bytes::<ClientId>(&to_bytes(&ClientId(9))).unwrap(),
            ClientId(9)
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(0).to_string(), "node-0");
        assert_eq!(ClientId(12).to_string(), "client-12");
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(4u32), NodeId(4));
        assert_eq!(ClientId::from(4u32).as_usize(), 4);
    }
}
