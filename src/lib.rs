//! # hlf-bft
//!
//! A Rust reproduction of *"A Byzantine Fault-Tolerant Ordering Service
//! for the Hyperledger Fabric Blockchain Platform"* (Sousa, Bessani,
//! Vukolić — DSN 2018).
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`crypto`] — SHA-256 / HMAC / P-256 ECDSA built from scratch,
//! * [`wire`] — the canonical binary wire format,
//! * [`transport`] — in-process reliable channels with fault injection,
//! * [`simnet`] — deterministic discrete-event WAN simulator,
//! * [`consensus`] — BFT-SMaRt's Mod-SMaRt protocol plus the WHEAT
//!   geo-replication optimizations (sans-io state machine),
//! * [`smr`] — the state-machine-replication layer (clients, batching,
//!   checkpoints, state transfer, reconfiguration),
//! * [`fabric`] — a miniature Hyperledger-Fabric-style substrate
//!   (envelopes, blocks, ledger, validation, endorsement),
//! * [`ordering`] — the paper's contribution: the BFT ordering service
//!   (blockcutter, signing pool, frontends).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use hlf_consensus as consensus;
pub use hlf_crypto as crypto;
pub use hlf_fabric as fabric;
pub use hlf_simnet as simnet;
pub use hlf_smr as smr;
pub use hlf_transport as transport;
pub use hlf_wire as wire;
pub use ordering_core as ordering;
