#!/bin/bash
# Sanitizer harness for the threaded transport stack.
#
#   scripts/sanitize.sh asan   # AddressSanitizer (works on plain nightly)
#   scripts/sanitize.sh tsan   # ThreadSanitizer (also needs rust-src)
#
# Rebuilds the workspace with raw `rustc +nightly` (mirroring the
# offline build in .claude/skills/verify/check.sh — no cargo, no
# registry) and runs the threaded test surface under the sanitizer:
# the transport unit tests (TCP links + admin socket), the cross-backend
# `tcp_codec` suite, and the kill/restart `tcp_cluster` integration
# test.
#
# Both modes are *gated*, not required: when the toolchain pieces are
# missing the script prints a SKIP notice and exits 0, so the verify
# pipeline stays green on stable-only machines.
#
# TSan specifically needs an instrumented std (`rustup component add
# rust-src --toolchain nightly`, then -Zbuild-std): against the
# prebuilt, uninstrumented std it reports false positives on every
# Mutex/Condvar because the futex calls inside std are invisible to the
# runtime. Without rust-src the mode skips rather than crying wolf.
set -e
MODE=${1:-asan}
R="$(cd "$(dirname "$0")/.." && pwd)"
S="$R/.claude/skills/verify/stubs"
case "$MODE" in
  asan|tsan) ;;
  *) echo "usage: sanitize.sh [asan|tsan]"; exit 2 ;;
esac

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
  echo "sanitize[$MODE]: SKIP — no nightly toolchain (sanitizers are -Z flags)"
  exit 0
fi

BUILD_STD=""
if [ "$MODE" = tsan ]; then
  SYSROOT=$(rustc +nightly --print sysroot)
  if [ ! -d "$SYSROOT/lib/rustlib/src/rust/library" ]; then
    echo "sanitize[tsan]: SKIP — rust-src missing; TSan needs an instrumented std" \
         "(rustup component add rust-src --toolchain nightly)"
    exit 0
  fi
  SAN="-Zsanitizer=thread"
  BUILD_STD="-Zbuild-std"
  export TSAN_OPTIONS="suppressions=$R/scripts/tsan.supp history_size=7"
else
  SAN="-Zsanitizer=address"
  # Detached acceptor/reader/writer threads still hold their stacks and
  # TLS at process exit; leak accounting would flag those
  # still-reachable blocks, not real bugs. ASan's memory-error checking
  # (the part we want) is unaffected.
  export ASAN_OPTIONS="detect_leaks=0"
fi

O=/tmp/obj-$MODE
mkdir -p "$O"
E="--edition 2021"
RUSTC="rustc +nightly $E -L $O -Copt-level=1 -Awarnings $SAN $BUILD_STD -Cunsafe-allow-abi-mismatch=sanitizer"
ext() { echo "--extern $1=$O/lib$1.rlib"; }

echo "== sanitize[$MODE]: libs =="
$RUSTC --crate-type rlib "$S/parking_lot.rs" --crate-name parking_lot -o "$O/libparking_lot.rlib"
$RUSTC --crate-type rlib "$S/crossbeam.rs"   --crate-name crossbeam   -o "$O/libcrossbeam.rlib"
$RUSTC --crate-type rlib "$R/crates/crypto/src/lib.rs" --crate-name hlf_crypto -o "$O/libhlf_crypto.rlib"
$RUSTC --crate-type rlib "$R/crates/simnet/src/lib.rs" --crate-name hlf_simnet -o "$O/libhlf_simnet.rlib"
$RUSTC --crate-type rlib "$R/crates/obs/src/lib.rs"    --crate-name hlf_obs    -o "$O/libhlf_obs.rlib"
$RUSTC --crate-type rlib "$R/crates/audit/src/lib.rs" --crate-name hlf_audit \
  $(ext hlf_obs) -o "$O/libhlf_audit.rlib"
$RUSTC --crate-type rlib "$R/crates/wire/src/lib.rs" --crate-name hlf_wire \
  $(ext hlf_crypto) $(ext hlf_obs) -o "$O/libhlf_wire.rlib"
$RUSTC --crate-type rlib "$R/crates/consensus/src/lib.rs" --crate-name hlf_consensus \
  $(ext hlf_crypto) $(ext hlf_wire) $(ext hlf_obs) -o "$O/libhlf_consensus.rlib"
$RUSTC --crate-type rlib "$R/crates/fabric/src/lib.rs" --crate-name hlf_fabric \
  $(ext hlf_crypto) $(ext hlf_wire) -o "$O/libhlf_fabric.rlib"
$RUSTC --crate-type rlib "$R/crates/transport/src/lib.rs" --crate-name hlf_transport \
  $(ext hlf_crypto) $(ext hlf_wire) $(ext crossbeam) $(ext parking_lot) $(ext hlf_obs) \
  -o "$O/libhlf_transport.rlib"
$RUSTC --crate-type rlib "$R/crates/smr/src/lib.rs" --crate-name hlf_smr \
  $(ext hlf_crypto) $(ext hlf_wire) $(ext hlf_consensus) $(ext hlf_transport) \
  $(ext crossbeam) $(ext parking_lot) $(ext hlf_obs) -o "$O/libhlf_smr.rlib"
CORE_DEPS="$(ext hlf_crypto) $(ext hlf_wire) $(ext hlf_consensus) $(ext hlf_transport) \
  $(ext hlf_smr) $(ext hlf_fabric) $(ext hlf_simnet) $(ext crossbeam) \
  $(ext parking_lot) $(ext hlf_obs) $(ext hlf_audit)"
$RUSTC --crate-type rlib "$R/crates/core/src/lib.rs" --crate-name ordering_core \
  $CORE_DEPS -o "$O/libordering_core.rlib"
$RUSTC --crate-type rlib "$R/src/lib.rs" --crate-name hlf_bft \
  $CORE_DEPS $(ext ordering_core) -o "$O/libhlf_bft.rlib"

run_test() { # name, src, extra externs...
  local name=$1 src=$2; shift 2
  echo "== sanitize[$MODE]: $name =="
  $RUSTC --test "$src" --crate-name "${name}_san" "$@" -o "$O/t_$name"
  "$O/t_$name" -q 2>&1 | tail -2 | sed "s/^/[$MODE:$name] /"
}

run_test transport "$R/crates/transport/src/lib.rs" \
  $(ext hlf_crypto) $(ext hlf_wire) $(ext crossbeam) $(ext parking_lot) $(ext hlf_obs)
run_test tcp_codec "$R/crates/smr/tests/tcp_codec.rs" \
  $(ext hlf_smr) $(ext hlf_crypto) $(ext hlf_wire) $(ext hlf_consensus) \
  $(ext hlf_transport) $(ext crossbeam) $(ext parking_lot) $(ext hlf_obs)
run_test tcp_cluster "$R/tests/tcp_cluster.rs" \
  $CORE_DEPS $(ext ordering_core) $(ext hlf_bft)

echo "sanitize[$MODE]: OK"
