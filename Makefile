# Convenience targets for the hlf-bft reproduction.

.PHONY: build test lint figures bench bench-crypto bench-wire bench-pipeline bench-net bench-all obs-report trace-report audit-report tsan asan clean-results

build:
	cargo build --workspace --release

test:
	cargo test --workspace 2>&1 | tee test_output.txt

# hlf-lint enforces the invariants the compiler cannot see: panic
# discipline, SAFETY-documented unsafe, an acyclic lock graph (now
# interprocedural, following call edges across crates), no blocking IO
# or waits while a guard is live, thread-lifecycle discipline
# (spawns joined or reasoned-detached, no channel wait cycles),
# constant-time secret scopes, Encode/Decode completeness, and the
# println discipline the old grep target approximated. Zero unsuppressed
# findings is the bar; suppressions need a reason
# (`// lint:allow(<pass>): <why>`). See DESIGN.md §7.
# The cache keeps re-runs incremental: unchanged files (by content
# hash) skip extraction and only the cross-file combine re-runs.
lint:
	cargo run --release -p hlf-lint -- --workspace --cache .lint-cache.json
	cargo clippy --workspace --all-targets -- -D warnings

# Sanitizer sweeps over the threaded transport stack (transport unit
# tests, tcp_codec, tcp_cluster). Both are nightly-gated and skip with
# a notice when toolchain pieces are missing; tsan additionally needs
# rust-src for an instrumented std (see scripts/sanitize.sh).
asan:
	scripts/sanitize.sh asan

tsan:
	scripts/sanitize.sh tsan

# Regenerate every figure/table of the paper's evaluation.
figures:
	cargo run --release -p bench --bin fig6_signing        | tee results_fig6.txt
	cargo run --release -p bench --bin fig7_lan_throughput -- --full | tee results_fig7_full.txt
	cargo run --release -p bench --bin fig8_geo_latency    | tee results_fig8.txt
	cargo run --release -p bench --bin fig9_geo_latency    | tee results_fig9.txt
	cargo run --release -p bench --bin eq1_bound_check     | tee results_eq1.txt
	cargo run --release -p bench --bin ablations           | tee results_ablations.txt

bench:
	cargo bench --workspace 2>&1 | tee bench_output.txt

# Crypto fast-path numbers: criterion micro-benches, the single-thread
# sig_rate example, and a refresh of BENCH_crypto.json (fast paths vs
# the in-tree double-and-add reference, measured on this machine).
bench-crypto:
	cargo bench -p bench --bench crypto 2>&1 | tee bench_crypto_output.txt
	cargo run --release -p bench --example sig_rate
	cargo run --release -p bench --bin bench_crypto_json

# Message-path numbers: allocations per ordered envelope, block
# encode/decode, and Fig.-7-style e2e throughput. Writes a raw
# measurement file; rebuild against the pre-change libraries and pass
# it back with --baseline to refresh BENCH_wire.json (see the binary's
# doc comment for the two-step recipe).
bench-wire:
	cargo run --release -p bench --bin bench_wire -- --out bench_wire_raw.json

# Pipelined-consensus headline: the BENCH_trace geo topology (4
# replicas, f=1, one slowed by 250 ms) driven past the single-slot
# saturation point at window depths k = 1/2/4. Asserts k=4 orders at
# least 2x the k=1 throughput at an equal-or-better p50 and writes
# BENCH_pipeline.json.
bench-pipeline:
	cargo run --release -p bench --bin bench_pipeline

# Real-socket cluster headline: the same saturated ordering workload
# measured in-process (hub transport) and again as 4 hlf_node replica
# OS processes + a TCP frontend on localhost. Asserts the socket
# cluster keeps >= 0.5x the in-process throughput and that the writer
# threads coalesce >1 frame per writev, then writes BENCH_net.json.
bench-net:
	cargo build --release -p bench --bin hlf_node
	cargo run --release -p bench --bin bench_net

# Boot a 4-node cluster with tentative execution, drive ~2 s of
# traffic, print every obs registry and write BENCH_obs.json.
obs-report:
	cargo run --release -p bench --bin obs_report

# Traced 4-replica geo sim (f=1, one slowed replica): merges flight
# dumps into per-transaction timelines, prints the phase-attribution
# table, checks the straggler detector flagged the slow replica,
# measures the HLF_TRACE on/off overhead, and writes BENCH_trace.json
# (overhead delta lands in BENCH_obs.json).
trace-report:
	cargo run --release -p bench --bin trace_report

# Cluster safety auditor validation: every clean sim scenario (geo,
# wheat, k=2..4, slow replica, leader crash) must audit with zero
# violations; a seeded equivocating decide and a seeded dropped
# certified value must both be caught naming the offending cid and
# replica; and the auditor's wall-clock overhead on the bench_pipeline
# workload must stay under 3%. Writes BENCH_audit.json.
audit-report:
	cargo run --release -p bench --bin audit_report

# Refresh every cheap benchmark artifact, then aggregate the headline
# numbers of all BENCH_*.json files into BENCH_summary.json. The
# companion regression gate (`bench_summary --check`, run by check.sh)
# compares deterministic sim throughput probes against
# bench_baselines.json and fails on a >10% regression.
bench-all:
	cargo run --release -p bench --bin bench_crypto_json
	cargo run --release -p bench --bin bench_pipeline
	cargo run --release -p bench --bin obs_report
	cargo run --release -p bench --bin trace_report
	cargo run --release -p bench --bin audit_report
	cargo build --release -p bench --bin hlf_node
	cargo run --release -p bench --bin bench_net
	cargo run --release -p bench --bin bench_summary

clean-results:
	rm -f results_*.txt test_output.txt bench_output.txt bench_crypto_output.txt
