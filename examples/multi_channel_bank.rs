//! Multi-channel ordering: one BFT ordering service carrying two
//! isolated ledgers (paper §3: a channel "is a private blockchain on a
//! HLF network, providing data partition"; step 4: the service gathers
//! envelopes *from all channels*).
//!
//! A retail channel and a wholesale channel share the same four
//! ordering nodes but form independent hash chains validated by
//! disjoint peer sets.
//!
//! ```sh
//! cargo run --release --example multi_channel_bank
//! ```

use hlf_bft::crypto::ecdsa::SigningKey;
use hlf_bft::fabric::{EndorsementPolicy, FabricClient, KvChaincode, Peer, PeerConfig};
use hlf_bft::ordering::service::{OrderingService, ServiceOptions};
use std::collections::HashMap;
use std::time::Duration;

fn make_peers(channel: &str, count: usize, orderer_keys: Vec<hlf_bft::crypto::ecdsa::VerifyingKey>, client: &FabricClient) -> Vec<Peer> {
    let keys: Vec<SigningKey> = (0..count)
        .map(|i| SigningKey::from_seed(format!("{channel}-peer-{i}").as_bytes()))
        .collect();
    let endorser_keys: Vec<_> = keys.iter().map(|k| *k.verifying_key()).collect();
    (0..count)
        .map(|i| {
            let mut peer = Peer::new_on_channel(
                PeerConfig {
                    id: i as u32,
                    signing_key: keys[i].clone(),
                    endorser_keys: endorser_keys.clone(),
                    orderer_keys: orderer_keys.clone(),
                    orderer_signatures_needed: 2,
                    policies: HashMap::from([(
                        "kv".to_string(),
                        EndorsementPolicy::AnyN(2),
                    )]),
                },
                channel,
            );
            peer.install_chaincode(Box::new(KvChaincode::new()));
            peer.register_client(client.id(), client.verifying_key());
            peer
        })
        .collect()
}

fn main() {
    let mut service = OrderingService::start(
        4,
        ServiceOptions::new(1)
            .with_block_size(2)
            .with_signing_threads(2),
    );
    let mut frontend = service.frontend();

    let mut retail_client = FabricClient::new(1, "retail", SigningKey::from_seed(b"retail-client"));
    let mut wholesale_client =
        FabricClient::new(2, "wholesale", SigningKey::from_seed(b"wholesale-client"));
    let mut retail_peers = make_peers("retail", 3, service.orderer_keys().to_vec(), &retail_client);
    let mut wholesale_peers =
        make_peers("wholesale", 3, service.orderer_keys().to_vec(), &wholesale_client);
    println!("one ordering cluster, two channels, disjoint peer sets");

    // Interleave traffic from both channels through the same cluster.
    for i in 0..4 {
        let refs: Vec<&Peer> = retail_peers.iter().collect();
        let envelope = retail_client
            .transact_str(&refs, 2, "kv", &["put", &format!("account-{i}"), "100"])
            .expect("retail endorsement");
        frontend.submit_to_channel("retail", envelope.to_bytes());

        let refs: Vec<&Peer> = wholesale_peers.iter().collect();
        let envelope = wholesale_client
            .transact_str(&refs, 2, "kv", &["put", &format!("position-{i}"), "1000000"])
            .expect("wholesale endorsement");
        frontend.submit_to_channel("wholesale", envelope.to_bytes());
    }

    // Each channel delivers two blocks of two envelopes, independently
    // numbered and chained.
    for channel in ["retail", "wholesale"] {
        for _ in 0..2 {
            let block = frontend
                .next_block_on(channel, Duration::from_secs(15))
                .expect("block");
            println!(
                "channel {:<10} block #{} ({} envelopes)",
                block.header.channel,
                block.header.number,
                block.envelopes.len()
            );
            let peers = if channel == "retail" {
                &mut retail_peers
            } else {
                &mut wholesale_peers
            };
            for peer in peers.iter_mut() {
                let events = peer.validate_and_commit(block.clone()).expect("valid block");
                assert!(events.iter().all(|e| e.validation.is_valid()));
            }
        }
    }

    // Isolation: retail peers know nothing of wholesale state.
    assert!(retail_peers[0].state().get("position-0").is_none());
    assert!(wholesale_peers[0].state().get("account-0").is_none());
    assert_eq!(retail_peers[0].state().get("account-0").unwrap().0.as_ref(), b"100");
    println!("channels isolated: retail peers hold no wholesale keys and vice versa");
    service.shutdown();
}
