//! Fault injection: crash the consensus leader mid-stream and watch the
//! ordering service elect a new one and keep producing blocks — no
//! envelope lost, hash chain intact.
//!
//! ```sh
//! cargo run --release --example leader_failover
//! ```

use hlf_wire::Bytes;
use hlf_bft::ordering::service::{OrderingService, ServiceOptions};
use std::time::{Duration, Instant};

fn main() {
    let mut service = OrderingService::start(
        4,
        ServiceOptions::new(1)
            .with_block_size(5)
            .with_signing_threads(2)
            .with_request_timeout_ms(300),
    );
    let mut frontend = service.frontend();
    println!("4-node ordering cluster up (f = 1, leader = node 0)");

    let submit_wave = |frontend: &mut hlf_bft::ordering::Frontend, tag: u8, count: usize| {
        for i in 0..count {
            let mut payload = vec![tag; 64];
            payload[1] = i as u8;
            frontend.submit(Bytes::from(payload));
        }
    };
    let collect = |frontend: &mut hlf_bft::ordering::Frontend, expected: usize| -> (usize, u64) {
        let mut got = 0;
        let mut last_block = 0;
        let deadline = Instant::now() + Duration::from_secs(60);
        while got < expected && Instant::now() < deadline {
            if let Some(block) = frontend.next_block(Duration::from_secs(5)) {
                got += block.envelopes.len();
                last_block = block.header.number;
            }
        }
        (got, last_block)
    };

    // Wave 1 through the original leader.
    submit_wave(&mut frontend, 0xaa, 15);
    let (got, last) = collect(&mut frontend, 15);
    println!("wave 1: {got}/15 envelopes delivered (up to block #{last})");

    // Crash the leader.
    println!("crashing node 0 (the leader)...");
    service.runtime_mut().crash(0);

    let start = Instant::now();
    submit_wave(&mut frontend, 0xbb, 15);
    let (got, last) = collect(&mut frontend, 15);
    println!(
        "wave 2: {got}/15 envelopes delivered (up to block #{last}) \
         after failover in {:?}",
        start.elapsed()
    );

    // The surviving nodes report their new regency via stats.
    for i in 1..4 {
        println!(
            "node {i}: decided {} consensus instances",
            service.node_stats(i).decided()
        );
    }
    println!("service survived a Byzantine-grade fault (crash of the leader)");
    service.shutdown();
}
