//! A complete Fabric-style application over the BFT ordering service:
//! asset creation and transfer with endorsement, ordering, validation
//! and MVCC conflict detection — the paper's six protocol steps end to
//! end, including a double-spend race that the validation step
//! resolves.
//!
//! ```sh
//! cargo run --release --example asset_transfer
//! ```

use hlf_wire::Bytes;
use hlf_bft::crypto::ecdsa::SigningKey;
use hlf_bft::fabric::{
    AssetChaincode, EndorsementPolicy, Envelope, Peer, PeerConfig, Proposal,
};
use hlf_bft::ordering::service::{OrderingService, ServiceOptions};
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    // --- Infrastructure: 4 orderers, 3 peers, 1 client -------------
    let mut service = OrderingService::start(
        4,
        ServiceOptions::new(1)
            .with_block_size(2)
            .with_signing_threads(2),
    );
    let peer_keys: Vec<SigningKey> = (0..3)
        .map(|i| SigningKey::from_seed(format!("demo-peer-{i}").as_bytes()))
        .collect();
    let endorser_keys: Vec<_> = peer_keys.iter().map(|k| *k.verifying_key()).collect();
    let client_key = SigningKey::from_seed(b"demo-client");

    let mut peers: Vec<Peer> = (0..3)
        .map(|i| {
            let mut peer = Peer::new_on_channel(PeerConfig {
                id: i as u32,
                signing_key: peer_keys[i].clone(),
                endorser_keys: endorser_keys.clone(),
                orderer_keys: service.orderer_keys().to_vec(),
                orderer_signatures_needed: 2,
                policies: HashMap::from([(
                    "asset".to_string(),
                    EndorsementPolicy::AnyN(2),
                )]),
            }, "trading");
            peer.install_chaincode(Box::new(AssetChaincode::new()));
            peer.register_client(1, *client_key.verifying_key());
            peer
        })
        .collect();
    let mut frontend = service.frontend();
    println!("network up: 4 orderers (f=1), 3 peers, asset chaincode installed");

    let mut nonce = 0u64;
    let mut transact = |peers: &[Peer], args: &[&str]| -> Envelope {
        nonce += 1;
        let proposal = Proposal {
            channel: "trading".into(),
            chaincode: "asset".into(),
            client: 1,
            nonce,
            args: args.iter().map(|a| Bytes::copy_from_slice(a.as_bytes())).collect(),
        };
        let responses = peers[..2]
            .iter()
            .map(|p| p.endorse(&proposal).expect("endorsement"))
            .collect();
        Envelope::assemble(proposal, responses, &client_key).expect("assembly")
    };

    let commit_next_block = |peers: &mut Vec<Peer>,
                                 frontend: &mut hlf_bft::ordering::Frontend| {
        let block = frontend
            .next_block(Duration::from_secs(15))
            .expect("block delivered");
        println!("-- block #{} ({} envelopes)", block.header.number, block.envelopes.len());
        for peer in peers.iter_mut() {
            let events = peer.validate_and_commit(block.clone()).expect("valid block");
            if peer.id() == 0 {
                for event in &events {
                    println!(
                        "   tx {}.. -> {}",
                        &event.tx_id.to_hex()[..12],
                        event.validation
                    );
                }
            }
        }
    };

    // --- Round 1: create two assets --------------------------------
    let create_car = transact(&peers, &["create", "car", "alice", "9000"]);
    let create_boat = transact(&peers, &["create", "boat", "bob", "55000"]);
    frontend.submit_to_channel("trading", create_car.to_bytes());
    frontend.submit_to_channel("trading", create_boat.to_bytes());
    commit_next_block(&mut peers, &mut frontend);

    // --- Round 2: a double-spend race ------------------------------
    // Alice signs two transfers of the same car, endorsed against the
    // same committed state. Both are totally ordered; MVCC validation
    // lets exactly the first one through.
    let to_carol = transact(&peers, &["transfer", "car", "carol"]);
    let to_dave = transact(&peers, &["transfer", "car", "dave"]);
    frontend.submit_to_channel("trading", to_carol.to_bytes());
    frontend.submit_to_channel("trading", to_dave.to_bytes());
    commit_next_block(&mut peers, &mut frontend);

    // --- Inspect final state ----------------------------------------
    let owner = peers[0].state().get("asset/car").expect("car exists").0;
    println!(
        "final owner record: {}",
        std::str::from_utf8(&owner).unwrap()
    );
    for peer in &peers {
        assert!(peer.ledger().verify_chain());
        assert_eq!(peer.state().get("asset/car").unwrap().0, owner);
    }
    println!(
        "all {} peers agree; ledgers verified ({} blocks)",
        peers.len(),
        peers[0].ledger().height()
    );
    service.shutdown();
}
