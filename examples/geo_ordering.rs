//! Geo-distributed ordering: BFT-SMaRt vs WHEAT across four continents
//! (a miniature of the paper's §6.3 evaluation).
//!
//! Ordering nodes run in Oregon, Ireland, Sydney and São Paulo — WHEAT
//! adds Virginia as a weighted spare — while frontends in Canada,
//! Oregon, Virginia and São Paulo measure end-to-end envelope latency
//! on the deterministic WAN simulator.
//!
//! ```sh
//! cargo run --release --example geo_ordering
//! ```

use hlf_bft::ordering::sim::{run_geo_experiment, GeoConfig, Protocol};
use hlf_bft::simnet::SimTime;

fn main() {
    println!("simulating 30s of geo-distributed ordering (1 KiB envelopes, blocks of 10)\n");

    let mut results = Vec::new();
    for protocol in [Protocol::BftSmart, Protocol::Wheat] {
        let mut config = GeoConfig::new(protocol);
        config.duration = SimTime::from_secs(30);
        config.warmup = SimTime::from_secs(5);
        config.rate_per_frontend = 275.0;
        let result = run_geo_experiment(&config);
        results.push((protocol, result));
    }

    println!(
        "{:<12} {:>22} {:>22}",
        "frontend", "BFT-SMaRt (med/p90 ms)", "WHEAT (med/p90 ms)"
    );
    let (_, bft) = &results[0];
    let (_, wheat) = &results[1];
    for (b, w) in bft.frontends.iter().zip(&wheat.frontends) {
        println!(
            "{:<12} {:>12.0} / {:<7.0} {:>12.0} / {:<7.0}",
            b.region.name(),
            b.median_ms,
            b.p90_ms,
            w.median_ms,
            w.p90_ms
        );
    }
    println!(
        "\nthroughput: BFT-SMaRt {:.0} tx/s, WHEAT {:.0} tx/s",
        bft.throughput, wheat.throughput
    );

    let avg = |fls: &[hlf_bft::ordering::sim::FrontendLatency]| {
        fls.iter().map(|f| f.median_ms).sum::<f64>() / fls.len() as f64
    };
    let improvement = 100.0 * (1.0 - avg(&wheat.frontends) / avg(&bft.frontends));
    println!(
        "WHEAT cuts median latency by {improvement:.0}% on average \
         (the paper reports ~50% with its RTTs)"
    );
}
