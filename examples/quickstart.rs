//! Quickstart: boot a 4-node BFT ordering cluster, submit envelopes
//! through a frontend, and watch signed blocks come back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hlf_wire::Bytes;
use hlf_bft::ordering::service::{OrderingService, ServiceOptions};
use std::time::Duration;

fn main() {
    // A cluster of 3f+1 = 4 ordering nodes tolerating f = 1 Byzantine
    // fault, cutting blocks of 10 envelopes.
    let mut service = OrderingService::start(
        4,
        ServiceOptions::new(1)
            .with_block_size(10)
            .with_signing_threads(4),
    );
    println!(
        "started ordering cluster: n = {}, f = 1, block size = {}",
        service.n(),
        service.options().block_size
    );

    // A frontend relays envelopes on behalf of clients and collects
    // 2f+1 matching block copies before trusting a block.
    let mut frontend = service.frontend();

    for i in 0..30u32 {
        let envelope = Bytes::from(format!("transaction-envelope-{i:04}").into_bytes());
        frontend.submit(envelope);
    }
    println!("submitted 30 envelopes");

    let mut delivered = 0;
    while delivered < 30 {
        let block = frontend
            .next_block(Duration::from_secs(15))
            .expect("cluster should deliver blocks");
        delivered += block.envelopes.len();
        println!(
            "block #{:<3} prev={} envelopes={:2} signatures={} first={:?}",
            block.header.number,
            &block.header.prev_hash.to_hex()[..12],
            block.envelopes.len(),
            block.signatures.len(),
            std::str::from_utf8(&block.envelopes[0]).unwrap_or("<binary>"),
        );
    }

    println!("all 30 envelopes delivered in hash-chained, signed blocks");
    service.shutdown();
}
